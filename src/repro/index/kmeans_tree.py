"""FLANN-style hierarchical k-means tree for approximate KNN.

This is the KNN substrate of KNN-BLOCK DBSCAN. The paper controls two of
its parameters: the *branching factor* (set to 10, varied 3-20 in the
trade-off study) and the *ratio of leaves to check* (set to 0.6, varied
0.001-0.3), which is exactly FLANN's "checks" knob expressed as a
fraction of leaves.

Construction recursively partitions the points with Lloyd's k-means
(``branching`` centers per node) until a node holds at most ``leaf_size``
points. Search is best-first: it always descends into the child whose
center is closest to the query while pushing siblings onto a priority
queue, stopping once the allowed number of leaves has been examined.
Checking 100% of leaves makes the search exhaustive (exact).

Like the cover tree, it operates in the Euclidean metric on the unit
sphere (Equation 1 of the paper) and exposes cosine distances.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.distances import (
    check_unit_norm,
    euclidean_distance_matrix,
    euclidean_distance_to_many,
    euclidean_from_cosine,
)
from repro.exceptions import InvalidParameterError
from repro.index.base import (
    NeighborIndex,
    expand_csr,
    group_hit_pairs,
    grouped_pair_distances,
)
from repro.rng import ensure_rng

__all__ = ["KMeansTree"]

#: Lloyd iterations per node split; FLANN's default is also small.
_KMEANS_ITERATIONS = 8


class _Node:
    """One tree node: either an internal split or a leaf with points."""

    __slots__ = (
        "center",
        "radius",
        "children",
        "child_centers",
        "point_indices",
        "leaf_points",
    )

    def __init__(self, center: np.ndarray) -> None:
        self.center = center
        self.radius = 0.0  # max Euclidean distance from center to any point below
        self.children: list[_Node] | None = None
        self.child_centers: np.ndarray | None = None  # stacked once at build
        self.point_indices: np.ndarray | None = None
        self.leaf_points: np.ndarray | None = None  # contiguous copy at leaves

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class KMeansTree(NeighborIndex):
    """Approximate KNN index built from hierarchical k-means.

    Parameters
    ----------
    branching:
        Number of k-means centers per internal node (>= 2).
    checks_ratio:
        Fraction of leaves the search may examine, in (0, 1]. Higher is
        more accurate and slower; 1.0 is exact.
    leaf_size:
        Maximum points per leaf.
    seed:
        Seed for k-means center initialization.
    """

    def __init__(
        self,
        branching: int = 10,
        checks_ratio: float = 0.6,
        leaf_size: int = 32,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if branching < 2:
            raise InvalidParameterError(f"branching must be >= 2; got {branching}")
        if not 0.0 < checks_ratio <= 1.0:
            raise InvalidParameterError(
                f"checks_ratio must lie in (0, 1]; got {checks_ratio}"
            )
        if leaf_size < 1:
            raise InvalidParameterError(f"leaf_size must be >= 1; got {leaf_size}")
        self.branching = int(branching)
        self.checks_ratio = float(checks_ratio)
        self.leaf_size = int(leaf_size)
        # Remembered for the sharded backend's rebuild spec (a live
        # Generator seed marks the tree as non-reconstructible).
        self.seed = seed
        self._rng = ensure_rng(seed)
        self._points: np.ndarray | None = None
        self._root: _Node | None = None
        self._n_leaves = 0
        self._exact_flat: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def n_leaves(self) -> int:
        """Number of leaf nodes after :meth:`build`."""
        return self._n_leaves

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def build(self, X: np.ndarray) -> "KMeansTree":
        self._points = check_unit_norm(X)
        self._n_leaves = 0
        all_indices = np.arange(self._points.shape[0], dtype=np.int64)
        self._root = self._build_node(all_indices)
        self._freeze()
        return self

    def _freeze(self) -> None:
        """Flatten the node tree into arrays for the batched traversal."""
        order: list[_Node] = [self._root]
        i = 0
        while i < len(order):
            node = order[i]
            i += 1
            if node.children:
                order.extend(node.children)
        self._np_nodes = order
        self._np_centers = np.stack([n.center for n in order])
        self._np_center_sq = np.einsum("ij,ij->i", self._np_centers, self._np_centers)
        self._np_radius = np.array([n.radius for n in order])
        self._np_is_leaf = np.array([n.is_leaf for n in order], dtype=bool)
        index_of = {id(n): k for k, n in enumerate(order)}
        counts = np.array(
            [len(n.children) if n.children else 0 for n in order], dtype=np.int64
        )
        self._np_child_offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
        )
        self._np_child_flat = np.array(
            [index_of[id(c)] for n in order for c in (n.children or [])],
            dtype=np.int64,
        )
        self._exact_flat = None

    def _build_node(self, indices: np.ndarray) -> _Node:
        pts = self._points[indices]
        center = pts.mean(axis=0)
        node = _Node(center)
        node.radius = float(euclidean_distance_to_many(center, pts).max())
        if indices.size <= max(self.leaf_size, self.branching):
            node.point_indices = indices
            node.leaf_points = np.ascontiguousarray(pts)
            self._n_leaves += 1
            return node
        assignments, centers = self._lloyd(pts)
        occupied = [
            np.flatnonzero(assignments == cluster_id)
            for cluster_id in range(centers.shape[0])
        ]
        occupied = [members for members in occupied if members.size]
        if len(occupied) <= 1:
            # Degenerate split (e.g. duplicated points): fall back to leaf
            # *before* recursing, or identical inputs would loop forever.
            node.point_indices = indices
            node.leaf_points = np.ascontiguousarray(pts)
            self._n_leaves += 1
            return node
        node.children = [self._build_node(indices[members]) for members in occupied]
        node.child_centers = np.stack([c.center for c in node.children])
        return node

    def _lloyd(self, pts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """A few Lloyd iterations; returns (assignments, centers)."""
        k = min(self.branching, pts.shape[0])
        seeds = self._rng.choice(pts.shape[0], size=k, replace=False)
        centers = pts[seeds].copy()
        assignments = np.zeros(pts.shape[0], dtype=np.int64)
        for _ in range(_KMEANS_ITERATIONS):
            dists = euclidean_distance_matrix(pts, centers)
            new_assignments = dists.argmin(axis=1)
            if np.array_equal(new_assignments, assignments):
                assignments = new_assignments
                break
            assignments = new_assignments
            for cluster_id in range(k):
                member_mask = assignments == cluster_id
                if member_mask.any():
                    centers[cluster_id] = pts[member_mask].mean(axis=0)
                else:
                    # Re-seed empty clusters on the farthest point.
                    farthest = dists.min(axis=1).argmax()
                    centers[cluster_id] = pts[farthest]
        return assignments, centers

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _max_leaf_checks(self) -> int:
        return max(1, math.ceil(self.checks_ratio * self._n_leaves))

    def _is_exact(self) -> bool:
        """True when the leaf-check budget covers every leaf (exact mode)."""
        return self._max_leaf_checks() >= self._n_leaves

    def _exact_candidates(self) -> tuple[np.ndarray, np.ndarray]:
        """``(indices, points)`` of all leaves flattened in node order.

        Exact-mode searches visit every leaf, so the candidate set is
        the whole dataset; flattening the leaf blocks once (cached; a
        loaded tree serves it straight from its memory-mapped
        ``leaf_points_flat``) replaces the per-query heap traversal with
        one contiguous distance kernel.
        """
        if self._exact_flat is None:
            leaves = [n for n in self._np_nodes if n.is_leaf]
            idx = np.concatenate([n.point_indices for n in leaves])
            pts = np.ascontiguousarray(np.concatenate([n.leaf_points for n in leaves]))
            self._exact_flat = (idx, pts)
        return self._exact_flat

    def _collect_candidates(
        self, q: np.ndarray, prune_radius: float | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Best-first traversal; returns (indices, cosine distances) from
        the checked leaves.

        Cosine distances are computed per leaf against the contiguous
        ``leaf_points`` copy (no per-query gather of dataset rows).
        ``prune_radius`` (Euclidean) additionally skips nodes whose ball
        cannot intersect the query ball — used by range queries, where it
        makes a full-checks traversal exact.
        """
        assert self._root is not None
        queue: list[tuple[float, int, _Node]] = []
        tiebreak = 0
        root_dist = float(np.linalg.norm(q - self._root.center))
        heapq.heappush(queue, (root_dist, tiebreak, self._root))
        budget = self._max_leaf_checks()
        collected_idx: list[np.ndarray] = []
        collected_dist: list[np.ndarray] = []
        while queue and budget > 0:
            dist, _, node = heapq.heappop(queue)
            if prune_radius is not None and dist > prune_radius + node.radius:
                continue
            if node.is_leaf:
                collected_idx.append(node.point_indices)
                # Clamp at 0 like every cosine kernel, so the scalar and
                # batched leaf blocks agree exactly on zero distances.
                collected_dist.append(np.maximum(0.0, 1.0 - node.leaf_points @ q))
                budget -= 1
                continue
            child_dists = euclidean_distance_to_many(q, node.child_centers)
            for child, child_dist in zip(node.children, child_dists):
                tiebreak += 1
                heapq.heappush(queue, (float(child_dist), tiebreak, child))
        if not collected_idx:
            return np.empty(0, dtype=np.int64), np.empty(0)
        return np.concatenate(collected_idx), np.concatenate(collected_dist)

    def knn_query(self, q: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Approximate k nearest neighbors; exact when ``checks_ratio=1``."""
        self._require_built()
        if k <= 0:
            raise InvalidParameterError(f"k must be positive; got {k}")
        q = np.asarray(q, dtype=np.float64)
        candidates, dists = self._collect_candidates(q, prune_radius=None)
        if candidates.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)
        k = min(k, candidates.size)
        nearest = np.argpartition(dists, k - 1)[:k]
        order = np.argsort(dists[nearest], kind="stable")
        idx = candidates[nearest[order]]
        return idx, dists[nearest[order]]

    def range_query(self, q: np.ndarray, eps: float) -> np.ndarray:
        """Range query over the checked leaves; exact when ``checks_ratio=1``."""
        self._require_built()
        q = np.asarray(q, dtype=np.float64)
        r = euclidean_from_cosine(min(max(eps, 0.0), 2.0))
        candidates, dists = self._collect_candidates(q, prune_radius=r)
        if candidates.size == 0:
            return np.empty(0, dtype=np.int64)
        hits = candidates[dists < eps]
        return np.sort(hits)

    # ------------------------------------------------------------------
    # Batched queries (vectorized level-synchronous traversal)
    # ------------------------------------------------------------------

    def _batch_reachable_leaves(
        self, Q: np.ndarray, r: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """All (query row, leaf node id) pairs the pruned traversal reaches.

        Level-synchronous counterpart of :meth:`_collect_candidates` with
        a ``prune_radius``: a leaf is reachable iff neither it nor any
        ancestor is pruned by the ball-intersection bound
        ``d(q, center) > r + radius``. Visit *order* is irrelevant here —
        the caller handles the leaf-check budget.
        """
        n_queries = Q.shape[0]
        Q_sq = np.einsum("ij,ij->i", Q, Q)
        nodes = np.zeros(1, dtype=np.int64)  # node 0 is the root
        q_flat = np.arange(n_queries, dtype=np.int64)
        q_offsets = np.array([0, n_queries], dtype=np.int64)
        # Squared distances against squared bounds (monotone, same pairs
        # pass) skip a sqrt over every frontier pair.
        dists = grouped_pair_distances(
            Q,
            q_flat,
            q_offsets,
            self._np_centers[nodes],
            Q_sq=Q_sq,
            C_sq=self._np_center_sq[nodes],
            squared=True,
        )
        leaf_qs: list[np.ndarray] = []
        leaf_ns: list[np.ndarray] = []
        while q_flat.size:
            col_of_entry = np.repeat(
                np.arange(nodes.size, dtype=np.int64), np.diff(q_offsets)
            )
            bound = r + self._np_radius[nodes[col_of_entry]]
            keep = dists <= bound * bound
            q_flat = q_flat[keep]
            col_of_entry = col_of_entry[keep]
            at_leaf = self._np_is_leaf[nodes[col_of_entry]]
            if at_leaf.any():
                leaf_qs.append(q_flat[at_leaf])
                leaf_ns.append(nodes[col_of_entry[at_leaf]])
            q_flat = q_flat[~at_leaf]
            col_of_entry = col_of_entry[~at_leaf]
            if q_flat.size == 0:
                break
            counts = np.bincount(col_of_entry, minlength=nodes.size)
            live = counts > 0
            nodes = nodes[live]
            q_offsets = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(counts[live])]
            )
            child_counts, children = expand_csr(
                self._np_child_offsets, self._np_child_flat, nodes
            )
            parent_of_child = np.repeat(
                np.arange(nodes.size, dtype=np.int64), child_counts
            )
            q_counts, child_q_flat = expand_csr(q_offsets, q_flat, parent_of_child)
            nodes = children
            q_flat = child_q_flat
            q_offsets = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(q_counts)]
            )
            dists = grouped_pair_distances(
                Q,
                q_flat,
                q_offsets,
                self._np_centers[nodes],
                Q_sq=Q_sq,
                C_sq=self._np_center_sq[nodes],
                squared=True,
            )
        if not leaf_qs:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(leaf_qs), np.concatenate(leaf_ns)

    def batch_range_query(self, Q: np.ndarray, eps: float) -> list[np.ndarray]:
        """Batched range query; row ``i`` equals ``range_query(Q[i], eps)``.

        The scalar path's best-first order only matters when the leaf-
        check budget (``checks_ratio``) runs out mid-search. The batch
        path therefore splits the queries after a shared vectorized
        reachability traversal: queries whose reachable-leaf count fits
        the budget — always true at ``checks_ratio=1.0`` — are answered
        with per-leaf distance blocks; the rest fall back to the scalar
        search, keeping every row identical to the per-point path.
        """
        self._require_built()
        Q = self._as_query_matrix(Q)
        n_queries = Q.shape[0]
        if n_queries == 0:
            return []
        eps = float(eps)
        r = euclidean_from_cosine(min(max(eps, 0.0), 2.0))
        leaf_q, leaf_node = self._batch_reachable_leaves(Q, r)
        budget = self._max_leaf_checks()
        reach_counts = np.bincount(leaf_q, minlength=n_queries)
        over_budget = reach_counts > budget
        if over_budget.any():
            in_budget = ~over_budget[leaf_q]
            leaf_q = leaf_q[in_budget]
            leaf_node = leaf_node[in_budget]
        results: list[np.ndarray | None] = [None] * n_queries
        hit_qs: list[np.ndarray] = []
        hit_ps: list[np.ndarray] = []
        # One cosine-distance block per distinct visited leaf: all the
        # queries that reach the leaf against its contiguous point copy.
        order = np.argsort(leaf_node, kind="stable")
        leaf_q = leaf_q[order]
        leaf_node = leaf_node[order]
        starts = np.flatnonzero(np.diff(leaf_node, prepend=-1))
        bounds = np.append(starts, leaf_node.size)
        for b in range(starts.size):
            queries = leaf_q[bounds[b] : bounds[b + 1]]
            node = self._np_nodes[leaf_node[bounds[b]]]
            block = np.maximum(0.0, 1.0 - Q[queries] @ node.leaf_points.T)
            rows, cols = np.nonzero(block < eps)
            if rows.size:
                hit_qs.append(queries[rows])
                hit_ps.append(node.point_indices[cols])
        grouped = group_hit_pairs(
            np.concatenate(hit_qs) if hit_qs else np.empty(0, dtype=np.int64),
            np.concatenate(hit_ps) if hit_ps else np.empty(0, dtype=np.int64),
            self.n_points,
            n_queries,
        )
        for i in range(n_queries):
            if over_budget[i]:
                results[i] = self.range_query(Q[i], eps)
            else:
                results[i] = grouped[i]
        return results

    def batch_knn_query(
        self, Q: np.ndarray, k: int
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Batched KNN; row ``i`` matches ``knn_query(Q[i], k)``.

        In exact mode (the budget covers every leaf) the per-query
        best-first traversal degenerates to "check all leaves", so the
        batch path computes blocked GEMM distance matrices against the
        cached flat leaf candidates and applies the scalar path's exact
        selection ops (argpartition + stable argsort) per row: identical
        neighbor rows, distances equal to the scalar kernel within BLAS
        summation-order ulps (the brute-force batch contract). The
        budget path stays per query — the best-first visit order is
        query-dependent state that does not vectorize.
        """
        self._require_built()
        if k <= 0:
            raise InvalidParameterError(f"k must be positive; got {k}")
        Q = self._as_query_matrix(Q)
        if Q.shape[0] == 0 or not self._is_exact():
            return super().batch_knn_query(Q, k)
        candidates, pts = self._exact_candidates()
        if candidates.size == 0:
            empty_i = np.empty(0, dtype=np.int64)
            empty_d = np.empty(0)
            return [empty_i] * Q.shape[0], [empty_d] * Q.shape[0]
        k = min(k, candidates.size)
        # Bound each distance block to ~32 MB regardless of dataset size.
        block_rows = max(1, (1 << 22) // candidates.size)
        indices: list[np.ndarray] = []
        dists: list[np.ndarray] = []
        for lo in range(0, Q.shape[0], block_rows):
            block = np.maximum(0.0, 1.0 - Q[lo : lo + block_rows] @ pts.T)
            for row in block:
                nearest = np.argpartition(row, k - 1)[:k]
                order = np.argsort(row[nearest], kind="stable")
                indices.append(candidates[nearest[order]])
                dists.append(row[nearest[order]])
        return indices, dists

    def batch_range_count(self, Q: np.ndarray, eps: float) -> np.ndarray:
        """Batched counts; row ``i`` equals ``range_count(Q[i], eps)``."""
        self._require_built()
        return np.array(
            [row.size for row in self.batch_range_query(Q, eps)], dtype=np.int64
        )

    # ------------------------------------------------------------------
    # Persistence
    #
    # The tree is stored flat in the _freeze() BFS order: per-node
    # center/radius/is_leaf plus the children CSR, and the leaves'
    # point indices and contiguous point copies concatenated in the
    # same order. Reconstruction walks node ids ascending, so the
    # post-load _freeze() assigns every node its saved id back and the
    # vectorized arrays come out identical to the pre-save ones.
    # ------------------------------------------------------------------

    def to_arrays(self) -> dict[str, np.ndarray]:
        self._require_built()
        leaves = [n for n in self._np_nodes if n.is_leaf]
        leaf_sizes = np.array([n.point_indices.size for n in leaves], dtype=np.int64)
        leaf_indptr = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(leaf_sizes)]
        )
        if leaves:
            leaf_index_flat = np.concatenate([n.point_indices for n in leaves])
            leaf_points_flat = np.concatenate([n.leaf_points for n in leaves])
        else:
            leaf_index_flat = np.empty(0, dtype=np.int64)
            leaf_points_flat = np.empty((0, self._points.shape[1]))
        return {
            "points": self._points,
            "centers": self._np_centers,
            "radius": self._np_radius,
            "is_leaf": self._np_is_leaf,
            "child_offsets": self._np_child_offsets,
            "child_flat": self._np_child_flat,
            "leaf_indptr": leaf_indptr,
            "leaf_index_flat": leaf_index_flat,
            "leaf_points_flat": leaf_points_flat,
        }

    def from_arrays(self, arrays: dict) -> "KMeansTree":
        self._points = np.asarray(arrays["points"], dtype=np.float64)
        centers = np.asarray(arrays["centers"], dtype=np.float64)
        radius = np.asarray(arrays["radius"], dtype=np.float64)
        is_leaf = np.asarray(arrays["is_leaf"], dtype=bool)
        child_offsets = np.asarray(arrays["child_offsets"], dtype=np.int64)
        child_flat = np.asarray(arrays["child_flat"], dtype=np.int64)
        leaf_indptr = np.asarray(arrays["leaf_indptr"], dtype=np.int64)
        leaf_index_flat = np.asarray(arrays["leaf_index_flat"], dtype=np.int64)
        leaf_points_flat = np.asarray(arrays["leaf_points_flat"], dtype=np.float64)
        n_nodes = centers.shape[0]
        nodes = [_Node(centers[i]) for i in range(n_nodes)]
        next_leaf = 0
        for i, node in enumerate(nodes):
            node.radius = float(radius[i])
            if is_leaf[i]:
                lo, hi = leaf_indptr[next_leaf], leaf_indptr[next_leaf + 1]
                next_leaf += 1
                # Contiguous slices of the flats: a memory-mapped leaf
                # block is served straight from the map, no copy.
                node.point_indices = leaf_index_flat[lo:hi]
                node.leaf_points = leaf_points_flat[lo:hi]
            else:
                kids = child_flat[child_offsets[i] : child_offsets[i + 1]]
                node.children = [nodes[int(j)] for j in kids]
                node.child_centers = centers[kids]
        self._root = nodes[0] if nodes else None
        self._n_leaves = int(np.count_nonzero(is_leaf))
        self._freeze()
        # The saved flats are already the exact-mode candidate layout:
        # seed the cache so a memory-mapped artifact serves batched
        # exact KNN without ever copying the points into RAM.
        self._exact_flat = (leaf_index_flat, leaf_points_flat)
        return self
