"""Sharded execution backend for the batched range-query engine.

:class:`ShardedIndex` partitions the dataset into contiguous row shards,
fits one inner index per shard (any registered backend: brute force,
cover tree, k-means tree, grid), and answers the batched query API by
fanning query blocks across the shards through a pluggable executor:

* ``serial``  — one shard after another in the calling process (the
  reference executor every other one is differentially tested against);
* ``thread``  — a thread pool; NumPy releases the GIL inside BLAS, so
  shard GEMMs genuinely overlap on multi-core machines;
* ``process`` — a pool of single-process workers that attach the
  dataset through :mod:`multiprocessing.shared_memory` (one row-major
  float64 segment written at build time), so the data matrix is never
  pickled; each live shard is pinned to exactly one worker (stable
  shard→worker affinity), which builds that shard's inner index lazily
  from the shared segment on first use and reuses it for every later
  query block. A fit therefore pays exactly ``n_live_shards`` inner
  builds — never ``n_workers × n_shards`` — and when a worker dies its
  shards are rebalanced across the survivors (who rebuild just those
  shards) with the failed calls retried.
* ``remote``  — a fleet of :mod:`repro.remote` worker processes reached
  over a length-prefixed socket protocol, each holding its pinned
  shards' inner indexes *warm across fits*: a second fit on the same
  pool attaches to the cached indexes and pays zero inner builds.
  Same affinity + rebalance protocol as ``process``, with per-call
  timeouts and bounded retry on top.

Executors are named by :class:`ExecutorSpec` — a registered value type
(``name`` + JSON-safe ``options``) that replaces the former magic
strings. Plain strings still work everywhere as a back-compat
constructor path (``executor="thread"`` coerces to
``ExecutorSpec("thread")``); unknown names raise listing the registered
executors, and :func:`register_executor` lets external packages plug in
new fabrics behind the same seam.

Build lifecycle: an inner index is a build-once, query-many artifact.
The serial/thread executors build all live shards eagerly in
:meth:`ShardedIndex.build`; the process executor builds them lazily in
the owning worker. Either way :meth:`ShardedIndex.stats` reports the
instrumented ``shard_inner_builds`` counter so hosts can prove the
build-once property per fit. :func:`resolve_engine_index` is the
shard-before-build seam: handed an *unbuilt* backend it constructs the
per-shard indexes directly, so no whole-dataset index is ever built just
to be thrown away.

Per-shard results arrive as CSR triples in *shard-local* row numbering;
the merge kernels below (:func:`merge_shard_rows`, :func:`merge_knn_rows`)
re-index them into global row ids and reassemble per-query rows that are
sorted, deduplicated and bit-identical to the single-index answer. Shards
are contiguous and disjoint, so re-indexing is one offset add per shard
and deduplication can never actually drop anything — the kernels still
enforce both properties so they hold for arbitrary (even overlapping)
splits, which is what the property-based tests exercise.

The module also hosts :class:`ShardingConfig`, the declarative sharding
spec that :class:`~repro.engine_config.ExecutionConfig` embeds and
threads explicitly into :class:`~repro.index.engine.NeighborhoodCache` /
:func:`resolve_engine_index` — the *only* way to shard a fit. The PR 5
thread-local deprecation shims (:func:`set_sharding` /
:func:`sharded_queries`) completed their cycle and now raise
:class:`~repro.exceptions.RemovedAPIError` naming the replacement;
there is no ambient sharding state of any scope anymore.

Exactness: range queries and counts are exact for exact inner backends
(a point's eps-neighborhood is the disjoint union of its per-shard
neighborhoods). KNN is a per-shard candidate merge: the returned
*distances* are exact for exact inner backends, and the returned ids
follow the deterministic (distance, global index) order — under exactly
tied distances (duplicated points) the id sequence may therefore differ
from a single brute-force index, whose tie order is argpartition-
arbitrary. Approximate inner backends (k-means tree below
``checks_ratio=1.0``) prune per shard and may surface different
candidates than one big tree — same contract as any partitioned ANN
index.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
import weakref
from collections.abc import Callable, Mapping, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from repro.exceptions import InvalidParameterError, NotFittedError, RemovedAPIError
from repro.index.base import NeighborIndex
from repro.index.brute_force import BruteForceIndex
from repro.index.cover_tree import CoverTree
from repro.index.grid import GridIndex
from repro.index.kmeans_tree import KMeansTree

__all__ = [
    "EXECUTOR_NAMES",
    "INNER_BACKENDS",
    "ExecutorSpec",
    "ShardedIndex",
    "ShardingConfig",
    "backend_spec_of",
    "concat_shard_rows",
    "csr_to_rows",
    "make_inner_backend",
    "maybe_shard",
    "merge_knn_rows",
    "merge_shard_rows",
    "register_executor",
    "registered_executors",
    "resolve_engine_index",
    "rows_to_csr",
    "set_sharding",
    "shard_offsets",
    "sharded_queries",
    "sharding_config",
]

#: Default number of query rows fanned out per executor round.
DEFAULT_QUERY_BLOCK = 2048

#: Upper bound on one worker's stats round-trip (a wedged worker must
#: not hang close(), which snapshots build counters before teardown).
_STATS_TIMEOUT_S = 10.0

#: The always-registered single-box executors (back-compat constant;
#: the authoritative list is :func:`registered_executors`, which also
#: names ``remote`` and anything added via :func:`register_executor`).
EXECUTOR_NAMES = ("serial", "thread", "process")

#: Registered inner backends, constructible by name in worker processes.
INNER_BACKENDS = {
    "brute_force": BruteForceIndex,
    "cover_tree": CoverTree,
    "grid": GridIndex,
    "kmeans_tree": KMeansTree,
}


def make_inner_backend(name: str, kwargs: dict | None = None):
    """Construct a registered inner backend from its picklable spec."""
    cls = INNER_BACKENDS.get(name)
    if cls is None:
        raise InvalidParameterError(
            f"unknown inner backend {name!r}; "
            f"available: {', '.join(sorted(INNER_BACKENDS))}"
        )
    return cls(**(kwargs or {}))


def backend_spec_of(index) -> tuple[str, dict] | None:
    """The ``(name, kwargs)`` spec reconstructing ``index``'s configuration.

    Returns None for index types (or states, e.g. a k-means tree seeded
    with a live Generator) that cannot be rebuilt from a picklable spec —
    callers leave such indexes unsharded rather than guessing.
    """
    if isinstance(index, BruteForceIndex):
        return "brute_force", {
            "block_size": index.block_size,
            "metric": index.metric.name,
        }
    if isinstance(index, CoverTree):
        return "cover_tree", {"base": index.base}
    if isinstance(index, KMeansTree):
        seed = getattr(index, "seed", None)
        if not (seed is None or isinstance(seed, int)):
            return None
        return "kmeans_tree", {
            "branching": index.branching,
            "checks_ratio": index.checks_ratio,
            "leaf_size": index.leaf_size,
            "seed": seed,
        }
    if isinstance(index, GridIndex):
        return "grid", {"eps": index.eps, "rho": index.rho}
    return None


# ----------------------------------------------------------------------
# Executor specs and the executor registry
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _ExecutorEntry:
    """One registered executor fabric.

    ``make_local`` (serial/thread style) receives the per-shard indexes
    the parent built eagerly; ``make`` (process/remote style) receives
    the raw dataset + shard bounds and owns building inside its workers.
    Exactly one of the two is set.
    """

    name: str
    normalize: Callable[[dict], dict]
    make_local: Callable | None = None
    make: Callable | None = None

    @property
    def local(self) -> bool:
        return self.make_local is not None


_EXECUTOR_REGISTRY: dict[str, _ExecutorEntry] = {}


def register_executor(
    name: str,
    *,
    normalize_options: Callable[[dict], dict] | None = None,
    make_local: Callable | None = None,
    make: Callable | None = None,
) -> None:
    """Register an executor fabric under ``name``.

    Exactly one of ``make_local(indexes, n_workers)`` (the parent builds
    the per-shard indexes eagerly and hands them over) or
    ``make(X, bounds, inner_name, inner_kwargs, n_workers, spec)`` (the
    executor owns building inside its workers) must be given.
    ``normalize_options`` validates and canonicalizes the
    :class:`ExecutorSpec` options dict (default: reject any option).
    """
    if (make_local is None) == (make is None):
        raise InvalidParameterError(
            "register_executor needs exactly one of make_local= or make="
        )
    _EXECUTOR_REGISTRY[name] = _ExecutorEntry(
        name=name,
        normalize=normalize_options or (lambda opts: _no_options(name, opts)),
        make_local=make_local,
        make=make,
    )


def registered_executors() -> tuple[str, ...]:
    """Names of every registered executor, sorted."""
    return tuple(sorted(_EXECUTOR_REGISTRY))


def _no_options(name: str, options: dict) -> dict:
    if options:
        raise InvalidParameterError(
            f"the {name!r} executor accepts no options; got {sorted(options)}"
        )
    return {}


def _json_safe_option(value):
    return list(value) if isinstance(value, tuple) else value


@dataclass(frozen=True)
class ExecutorSpec:
    """A registered executor by name, plus its JSON-safe options.

    The first-class replacement for the former magic strings: anywhere
    that accepted ``executor="thread"`` now accepts an ``ExecutorSpec``
    (plain strings keep working as a back-compat coercion path, and wire
    dicts round-trip through :meth:`to_dict` / :meth:`from_dict`).
    Unknown names raise listing the registered executors; options are
    validated and canonicalized per executor at construction, so a spec
    that exists is a spec that can run.
    """

    name: str
    options: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str):
            raise InvalidParameterError(
                f"executor name must be a string; got {type(self.name).__name__}"
            )
        entry = _EXECUTOR_REGISTRY.get(self.name)
        if entry is None:
            raise InvalidParameterError(
                f"unknown executor {self.name!r}; registered executors: "
                f"{', '.join(registered_executors())}"
            )
        if not isinstance(self.options, Mapping):
            raise InvalidParameterError(
                f"executor options must be a mapping; "
                f"got {type(self.options).__name__}"
            )
        object.__setattr__(self, "options", entry.normalize(dict(self.options)))

    # options is a dict, which the generated __hash__ would choke on;
    # hash the canonical sorted item view instead (values are hashable
    # after normalization: scalars and tuples only).
    def __hash__(self) -> int:
        return hash((self.name, tuple(sorted(self.options.items()))))

    @classmethod
    def coerce(cls, value) -> "ExecutorSpec":
        """Accept a spec, a bare name string, or a wire dict."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(value)
        if isinstance(value, Mapping):
            return cls.from_dict(value)
        raise InvalidParameterError(
            "executor must be an ExecutorSpec, a registered executor name, "
            f"or a wire dict; got {type(value).__name__}"
        )

    def to_dict(self) -> dict:
        """JSON-safe wire form; inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "options": {k: _json_safe_option(v) for k, v in self.options.items()},
        }

    def wire_value(self) -> "str | dict":
        """The compact wire spelling :meth:`coerce` round-trips.

        Option-free specs serialize as their bare name — byte-identical
        to the pre-spec string wire format — optioned specs as the
        strict :meth:`to_dict` dict.
        """
        return self.name if not self.options else self.to_dict()

    @classmethod
    def from_dict(cls, data: Mapping) -> "ExecutorSpec":
        """Strict reconstruction from :meth:`to_dict` output."""
        if not isinstance(data, Mapping):
            raise InvalidParameterError(
                f"ExecutorSpec.from_dict needs a mapping; got {type(data).__name__}"
            )
        unknown = set(data) - {"name", "options"}
        if unknown:
            raise InvalidParameterError(
                f"unknown ExecutorSpec keys: {sorted(unknown)}"
            )
        if "name" not in data:
            raise InvalidParameterError("ExecutorSpec dict requires a 'name' key")
        return cls(data["name"], data.get("options") or {})


# ----------------------------------------------------------------------
# Partitioning and CSR merge kernels
# ----------------------------------------------------------------------


def shard_offsets(n_points: int, n_shards: int) -> np.ndarray:
    """Balanced contiguous row partition: offsets of length ``n_shards + 1``.

    Shard ``s`` owns rows ``[offsets[s], offsets[s + 1])``; the first
    ``n_points % n_shards`` shards get one extra row. With
    ``n_shards > n_points`` the trailing shards are empty — legal, they
    simply contribute nothing.
    """
    if n_shards < 1:
        raise InvalidParameterError(f"n_shards must be >= 1; got {n_shards}")
    if n_points < 0:
        raise InvalidParameterError(f"n_points must be >= 0; got {n_points}")
    base, extra = divmod(n_points, n_shards)
    sizes = np.full(n_shards, base, dtype=np.int64)
    sizes[:extra] += 1
    offsets = np.zeros(n_shards + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    return offsets


def rows_to_csr(rows: Sequence[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Pack ragged per-query rows into ``(indptr, flat)`` CSR arrays.

    The compact wire format shard workers return: two flat arrays pickle
    an order of magnitude cheaper than a list of small ndarrays.
    """
    indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    for i, row in enumerate(rows):
        indptr[i + 1] = indptr[i] + len(row)
    if indptr[-1] == 0:
        return indptr, np.empty(0, dtype=np.int64)
    flat = np.concatenate([np.asarray(row, dtype=np.int64) for row in rows])
    return indptr, flat


def csr_to_rows(indptr: np.ndarray, flat: np.ndarray) -> list[np.ndarray]:
    """Inverse of :func:`rows_to_csr`: slice flat storage back into rows."""
    return [flat[indptr[i] : indptr[i + 1]] for i in range(len(indptr) - 1)]


def merge_shard_rows(
    per_shard_rows: Sequence[Sequence[np.ndarray]],
    shard_starts: Sequence[int],
    n_queries: int | None = None,
) -> list[np.ndarray]:
    """Merge shard-local hit rows into global, sorted, deduplicated rows.

    ``per_shard_rows[s][q]`` holds query ``q``'s hits within shard ``s``
    in shard-local numbering; ``shard_starts[s]`` is the shard's first
    global row. Row ``q`` of the result is the sorted union of
    ``per_shard_rows[s][q] + shard_starts[s]`` over all shards. For the
    disjoint contiguous shards :class:`ShardedIndex` produces, the union
    is a plain concatenation — but the kernel deduplicates regardless,
    so it is correct for arbitrary overlapping splits too.
    """
    if n_queries is None:
        n_queries = len(per_shard_rows[0]) if per_shard_rows else 0
    starts = [np.int64(s) for s in shard_starts]
    merged: list[np.ndarray] = []
    for q in range(n_queries):
        parts = [
            np.asarray(rows[q], dtype=np.int64) + start
            for rows, start in zip(per_shard_rows, starts)
            if len(rows[q])
        ]
        if not parts:
            merged.append(np.empty(0, dtype=np.int64))
        elif len(parts) == 1:
            merged.append(np.unique(parts[0]))
        else:
            merged.append(np.unique(np.concatenate(parts)))
    return merged


def concat_shard_rows(
    per_shard_rows: Sequence[Sequence[np.ndarray]],
    shard_starts: Sequence[int],
    n_queries: int,
) -> list[np.ndarray]:
    """Fast-path merge for disjoint ascending shards with sorted rows.

    When shard ``s`` owns the contiguous global range starting at
    ``shard_starts[s]``, the starts ascend, and every per-shard row is
    sorted (true for all registered inner backends), the global row is a
    plain offset-add concatenation — already sorted and duplicate-free,
    no per-row sort needed. :func:`merge_shard_rows` is the general
    kernel the property tests prove for arbitrary (even overlapping)
    splits; this one skips its ``np.unique`` on the hot path.
    """
    starts = [np.int64(s) for s in shard_starts]
    merged: list[np.ndarray] = []
    for q in range(n_queries):
        parts = [
            np.asarray(rows[q], dtype=np.int64) + start
            for rows, start in zip(per_shard_rows, starts)
            if len(rows[q])
        ]
        if not parts:
            merged.append(np.empty(0, dtype=np.int64))
        elif len(parts) == 1:
            merged.append(parts[0])
        else:
            merged.append(np.concatenate(parts))
    return merged


def merge_knn_rows(
    per_shard_idx: Sequence[Sequence[np.ndarray]],
    per_shard_dist: Sequence[Sequence[np.ndarray]],
    shard_starts: Sequence[int],
    k: int,
    n_queries: int | None = None,
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Merge per-shard KNN candidates into global top-``k`` rows.

    Every shard contributes its local top-``min(k, shard_size)``; the
    global answer is the ``k`` best candidates overall, ordered by
    ascending distance with ties broken by ascending global index (a
    deterministic order regardless of how candidates were split across
    shards).
    """
    if n_queries is None:
        n_queries = len(per_shard_idx[0]) if per_shard_idx else 0
    starts = [np.int64(s) for s in shard_starts]
    idx_rows: list[np.ndarray] = []
    dist_rows: list[np.ndarray] = []
    for q in range(n_queries):
        idx_parts = [
            np.asarray(rows[q], dtype=np.int64) + start
            for rows, start in zip(per_shard_idx, starts)
            if len(rows[q])
        ]
        if not idx_parts:
            idx_rows.append(np.empty(0, dtype=np.int64))
            dist_rows.append(np.empty(0))
            continue
        idx = np.concatenate(idx_parts)
        dist = np.concatenate(
            [
                np.asarray(rows[q], dtype=np.float64)
                for rows in per_shard_dist
                if len(rows[q])
            ]
        )
        order = np.lexsort((idx, dist))[:k]
        idx_rows.append(idx[order])
        dist_rows.append(dist[order])
    return idx_rows, dist_rows


# ----------------------------------------------------------------------
# Shard query operations (module-level so process pools can pickle them)
# ----------------------------------------------------------------------


def _op_range(index, Q: np.ndarray, eps: float):
    rows = index.batch_range_query(Q, eps)
    return rows_to_csr(rows)


def _op_count(index, Q: np.ndarray, eps: float):
    counter = getattr(index, "batch_range_count", None)
    if counter is not None:
        return np.asarray(counter(Q, eps), dtype=np.int64)
    rows = index.batch_range_query(Q, eps)
    return np.array([len(row) for row in rows], dtype=np.int64)


def _op_knn(index, Q: np.ndarray, k: int):
    query = getattr(index, "batch_knn_query", None)
    if query is None:
        raise InvalidParameterError(
            f"inner backend {type(index).__name__} does not support KNN queries"
        )
    idx_rows, dist_rows = query(Q, k)
    indptr, flat_idx = rows_to_csr(idx_rows)
    flat_dist = (
        np.concatenate([np.asarray(r, dtype=np.float64) for r in dist_rows])
        if indptr[-1]
        else np.empty(0)
    )
    return indptr, flat_idx, flat_dist


_SHARD_OPS = {"range": _op_range, "count": _op_count, "knn": _op_knn}


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------


class _SerialExecutor:
    """Runs shard calls one after another in the calling process."""

    def __init__(self, indexes: dict[int, object]) -> None:
        self._indexes = indexes

    def run(self, op: str, calls: list[tuple[int, tuple]]) -> list:
        fn = _SHARD_OPS[op]
        return [fn(self._indexes[shard_id], *args) for shard_id, args in calls]

    def close(self) -> None:
        pass


class _ThreadExecutor:
    """Runs shard calls on a thread pool (BLAS releases the GIL)."""

    def __init__(self, indexes: dict[int, object], n_workers: int) -> None:
        self._indexes = indexes
        self._pool = ThreadPoolExecutor(max_workers=n_workers)

    def run(self, op: str, calls: list[tuple[int, tuple]]) -> list:
        fn = _SHARD_OPS[op]
        futures = [
            self._pool.submit(fn, self._indexes[shard_id], *args)
            for shard_id, args in calls
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        self._pool.shutdown()


# Worker-process state, populated once per worker by _worker_init.
_WORKER_STATE: dict = {}  # reprolint: disable=RPL003 -- per-process worker
# state, written exactly once by the pool initializer in each worker


def _pin_blas_single_thread():
    """Limit BLAS pools in this process to one thread; returns the limiter.

    One BLAS thread per worker: the parallelism budget is spent on
    processes, and oversubscription (workers x BLAS threads) is the
    classic way a process pool ends up slower than serial. Returns
    ``None`` when threadpoolctl is unavailable — the worker still runs,
    just at risk of oversubscription.
    """
    try:
        import threadpoolctl
    except ImportError:
        return None
    try:
        return threadpoolctl.threadpool_limits(limits=1)
    except Exception as exc:
        warnings.warn(
            f"could not pin BLAS threads to 1: {exc}",
            RuntimeWarning,
            stacklevel=2,
        )
        return None


def _worker_init(
    shm_name: str,
    shape: tuple[int, int],
    dtype_str: str,
    bounds: tuple[tuple[int, int], ...],
    inner_name: str,
    inner_kwargs: dict,
) -> None:
    """Attach the shared dataset segment and stash the shard specs."""
    limiter = _pin_blas_single_thread()
    # The attachment lives as long as the worker process: _WORKER_STATE
    # holds it and the OS reclaims the mapping when the pool shuts down.
    shm = shared_memory.SharedMemory(name=shm_name)  # reprolint: disable=RPL001
    X = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=shm.buf)
    _WORKER_STATE.clear()
    _WORKER_STATE.update(
        shm=shm,
        X=X,
        bounds=bounds,
        inner=(inner_name, dict(inner_kwargs)),
        indexes={},
        limiter=limiter,
        n_builds=0,
    )


def _worker_shard_index(shard_id: int):
    """The worker's inner index for one shard, built lazily from shm."""
    index = _WORKER_STATE["indexes"].get(shard_id)
    if index is None:
        lo, hi = _WORKER_STATE["bounds"][shard_id]
        name, kwargs = _WORKER_STATE["inner"]
        index = make_inner_backend(name, kwargs).build(_WORKER_STATE["X"][lo:hi])
        _WORKER_STATE["indexes"][shard_id] = index
        _WORKER_STATE["n_builds"] += 1
    return index


def _worker_call(task: tuple[str, int, tuple]):
    op, shard_id, args = task
    return _SHARD_OPS[op](_worker_shard_index(shard_id), *args)


def _worker_stats() -> int:
    """This worker's inner-build count (queried by ``stats()``)."""
    return int(_WORKER_STATE.get("n_builds", 0))


def _release_process_resources(slots, shm) -> None:
    """Teardown without waiting on in-flight shard calls.

    ``shutdown(wait=False)`` signals each single-worker pool and cancels
    *queued* work, but a call already running would keep its worker
    alive — and a wedged worker (the classic BLAS-after-fork deadlock)
    would keep it alive forever — so any still-running worker is then
    terminated outright, matching the prompt-release semantics the
    pre-affinity ``pool.terminate()`` had. The segment is unlinked last:
    existing attachments in a straggler keep working (POSIX unlink only
    removes the name), and the memory is freed once every process lets
    go. ``slots`` is the executor's live slot list — mutated in place by
    rebalancing, so this sees whatever slots exist at release time.
    """
    workers = []
    for slot in slots:
        if slot is not None:
            workers.extend((getattr(slot, "_processes", None) or {}).values())
            slot.shutdown(wait=False, cancel_futures=True)
    for proc in workers:
        if proc.is_alive():
            proc.terminate()
    for proc in workers:
        proc.join(timeout=5.0)
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


def _start_method() -> str:
    """Prefer fork where available: no interpreter reboot per worker."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


class _ProcessExecutor:
    """Affinity-routed shard execution over shared memory.

    The dataset is written once into a ``SharedMemory`` segment. Each
    worker slot is a single-process pool; every live shard is pinned to
    one slot by a stable assignment (``shard_id % n_slots``), so the
    worker that owns a shard builds its inner index exactly once (lazily,
    from the shared segment) and reuses it for every later query block.
    Only query blocks travel to the workers and only compact CSR result
    arrays travel back — the data matrix itself is never pickled.

    Fault tolerance: a dead worker surfaces as ``BrokenProcessPool`` on
    its futures. Its shards are rebalanced round-robin across the
    surviving slots (which lazily rebuild just those shards) and the
    failed calls are retried; if every slot is gone a fresh one is
    spawned. ``n_rebalances`` counts these events for ``stats()``.
    """

    def __init__(
        self,
        X: np.ndarray,
        bounds: tuple[tuple[int, int], ...],
        inner_name: str,
        inner_kwargs: dict,
        n_workers: int,
    ) -> None:
        self._shm = shared_memory.SharedMemory(create=True, size=X.nbytes)
        try:
            np.ndarray(X.shape, dtype=X.dtype, buffer=self._shm.buf)[:] = X
            self._ctx = multiprocessing.get_context(_start_method())
            self._initargs = (
                self._shm.name,
                X.shape,
                X.dtype.str,
                bounds,
                inner_name,
                inner_kwargs,
            )
            n_slots = max(1, min(n_workers, len(bounds)))
            self._slots: list = [self._new_slot() for _ in range(n_slots)]
            # Stable shard→slot affinity: contiguous shards are balanced
            # within one row, so modulo routing is an even split.
            self._assignment = {s: s % n_slots for s in range(len(bounds))}
            # Slots that have accepted at least one task: stats can skip
            # the rest (their pools spawn workers lazily, and a worker
            # that never started has trivially built nothing).
            self._used_slots: set[int] = set()
            self.n_rebalances = 0
        except BaseException:
            # Construction failed after the segment was created: release
            # it here, nobody else holds a handle yet.
            self._shm.close()
            self._shm.unlink()
            raise
        # Guaranteed teardown even when close() is never called: finalize
        # must not reference self, or it would keep the executor alive.
        self._finalizer = weakref.finalize(
            self, _release_process_resources, self._slots, self._shm
        )

    def _new_slot(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=1,
            mp_context=self._ctx,
            initializer=_worker_init,
            initargs=self._initargs,
        )

    def _live_slot_ids(self) -> list[int]:
        return [i for i, slot in enumerate(self._slots) if slot is not None]

    def _rebalance(self, dead_slot_ids: set[int]) -> None:
        """Retire dead slots and move their shards to the survivors."""
        for slot_id in dead_slot_ids:
            slot = self._slots[slot_id]
            if slot is not None:
                slot.shutdown(wait=False, cancel_futures=True)
                self._slots[slot_id] = None
        survivors = self._live_slot_ids()
        if not survivors:
            # Every worker died: spawn one fresh slot so the fit can
            # still finish (its worker rebuilds shards lazily).
            self._slots.append(self._new_slot())
            survivors = self._live_slot_ids()
        orphaned = sorted(
            shard_id
            for shard_id, slot_id in self._assignment.items()
            if slot_id not in survivors
        )
        for rank, shard_id in enumerate(orphaned):
            self._assignment[shard_id] = survivors[rank % len(survivors)]
        self.n_rebalances += 1

    def run(self, op: str, calls: list[tuple[int, tuple]]) -> list:
        results: list = [None] * len(calls)
        pending = list(enumerate(calls))
        # Each retry round retires at least one slot; one extra round
        # covers the all-slots-dead respawn. Beyond that the machine is
        # actively killing workers and retrying would loop forever.
        for _ in range(len(self._slots) + 2):
            submitted: list[tuple[int, int, object]] = []
            broken: set[int] = set()
            failed: list[int] = []
            for pos, (shard_id, args) in pending:
                slot_id = self._assignment[shard_id]
                try:
                    future = self._slots[slot_id].submit(
                        _worker_call, (op, shard_id, args)
                    )
                except BrokenProcessPool:
                    broken.add(slot_id)
                    failed.append(pos)
                    continue
                self._used_slots.add(slot_id)
                submitted.append((pos, slot_id, future))
            for pos, slot_id, future in submitted:
                try:
                    results[pos] = future.result()
                except BrokenProcessPool:
                    broken.add(slot_id)
                    failed.append(pos)
            if not broken:
                return results
            self._rebalance(broken)
            pending = [(pos, calls[pos]) for pos in sorted(failed)]
        raise BrokenProcessPool(  # reprolint: disable=RPL004 -- callers
            # catch the stdlib executor's failure type; converting it
            # to a ReproError would break that contract
            f"shard workers keep dying; gave up after {self.n_rebalances} "
            f"rebalances with {len(pending)} calls outstanding"
        )

    def collect_stats(self) -> dict[str, int]:
        """Aggregate build accounting across the live workers.

        Only slots that ever accepted a task are queried: the others
        have lazily-unspawned workers, and starting a whole process just
        to hear "0 builds" would make close() pay worker start-up for an
        index that never served a query. Builds done by a worker that
        has since died are gone with it — the counter reflects the
        indexes the surviving pool actually built, which is what the
        build-once contract is about.
        """
        builds = 0
        for slot_id in self._live_slot_ids():
            if slot_id not in self._used_slots:
                continue
            try:
                # Bounded wait: a wedged worker must not turn a stats
                # snapshot (close() takes one) into an indefinite hang.
                builds += (
                    self._slots[slot_id]
                    .submit(_worker_stats)
                    .result(timeout=_STATS_TIMEOUT_S)
                )
            except (BrokenProcessPool, FuturesTimeoutError):
                continue
        return {"inner_builds": builds, "n_rebalances": self.n_rebalances}

    def close(self) -> None:
        self._finalizer()


# ----------------------------------------------------------------------
# Built-in executor registrations
# ----------------------------------------------------------------------


def _normalize_remote_options(options: dict) -> dict:
    allowed = {"addresses", "timeout_s", "retries", "connect_timeout_s"}
    unknown = set(options) - allowed
    if unknown:
        raise InvalidParameterError(
            f"unknown 'remote' executor options: {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )
    addresses = options.get("addresses")
    if isinstance(addresses, str) or not isinstance(addresses, Sequence):
        raise InvalidParameterError(
            "the 'remote' executor requires an 'addresses' option: a "
            "sequence of 'host:port' worker endpoints "
            "(see `repro-cli pool serve`)"
        )
    normalized: list[str] = []
    for address in addresses:
        address = str(address)
        host, sep, port = address.rpartition(":")
        if not sep or not host or not port.isdigit():
            raise InvalidParameterError(
                f"remote worker address must look like 'host:port'; "
                f"got {address!r}"
            )
        normalized.append(address)
    if not normalized:
        raise InvalidParameterError(
            "the 'remote' executor needs at least one worker address"
        )
    out: dict[str, object] = {"addresses": tuple(normalized)}
    for key in ("timeout_s", "connect_timeout_s"):
        if key in options:
            value = float(options[key])
            if not value > 0:
                raise InvalidParameterError(f"{key} must be > 0; got {value}")
            out[key] = value
    if "retries" in options:
        retries = int(options["retries"])
        if retries < 0:
            raise InvalidParameterError(f"retries must be >= 0; got {retries}")
        out["retries"] = retries
    return out


def _make_remote_executor(X, bounds, inner_name, inner_kwargs, n_workers, spec):
    # Imported lazily: the remote package pulls in the socket client and
    # is only needed once a remote spec actually builds.
    from repro.remote.pool import RemoteExecutor

    return RemoteExecutor(
        X=X,
        shards={s: bounds[s] for s in range(len(bounds))},
        inner_name=inner_name,
        inner_kwargs=inner_kwargs,
        options=spec.options,
    )


register_executor(
    "serial", make_local=lambda indexes, n_workers: _SerialExecutor(indexes)
)
register_executor(
    "thread", make_local=lambda indexes, n_workers: _ThreadExecutor(indexes, n_workers)
)
register_executor(
    "process",
    make=lambda X, bounds, inner_name, inner_kwargs, n_workers, spec: _ProcessExecutor(
        X, bounds, inner_name, inner_kwargs, n_workers
    ),
)
register_executor(
    "remote",
    normalize_options=_normalize_remote_options,
    make=_make_remote_executor,
)


# ----------------------------------------------------------------------
# The sharded index
# ----------------------------------------------------------------------


class ShardedIndex(NeighborIndex):
    """Row-sharded composite index behind the batched query API.

    Parameters
    ----------
    inner:
        Name of the registered inner backend fitted per shard
        (``"brute_force"``, ``"cover_tree"``, ``"kmeans_tree"``,
        ``"grid"``), or a zero-argument callable returning an unbuilt
        index (serial/thread executors only — worker processes can only
        rebuild from a picklable name + kwargs spec).
    inner_kwargs:
        Constructor arguments for the named inner backend (e.g. the
        grid's ``eps`` / ``rho``).
    n_shards:
        Number of contiguous row shards (>= 1). Empty shards (when
        ``n_shards > n_points``) are skipped.
    executor:
        An :class:`ExecutorSpec`, a registered executor name
        (``"serial"``, ``"thread"``, ``"process"``, ``"remote"``), or a
        spec wire dict. Stored coerced: ``self.executor`` is always an
        :class:`ExecutorSpec`.
    n_workers:
        Pool width for the thread/process executors; defaults to
        ``min(n_live_shards, cpu_count)``. The remote executor's width
        is its address list.
    query_block:
        Query rows fanned out per executor round; bounds both the
        per-task pickle size and peak memory of the merge.
    """

    def __init__(
        self,
        inner="brute_force",
        inner_kwargs: dict | None = None,
        n_shards: int = 4,
        executor: "ExecutorSpec | str" = "serial",
        n_workers: int | None = None,
        query_block: int = DEFAULT_QUERY_BLOCK,
    ) -> None:
        if n_shards < 1:
            raise InvalidParameterError(f"n_shards must be >= 1; got {n_shards}")
        executor = ExecutorSpec.coerce(executor)
        if n_workers is not None and n_workers < 1:
            raise InvalidParameterError(f"n_workers must be >= 1; got {n_workers}")
        if query_block < 1:
            raise InvalidParameterError(f"query_block must be >= 1; got {query_block}")
        if callable(inner):
            if not _EXECUTOR_REGISTRY[executor.name].local:
                raise InvalidParameterError(
                    f"the {executor.name!r} executor rebuilds inner indexes "
                    "in worker processes and therefore needs a registered "
                    "backend name, not a factory callable"
                )
        elif inner not in INNER_BACKENDS:
            raise InvalidParameterError(
                f"unknown inner backend {inner!r}; "
                f"available: {', '.join(sorted(INNER_BACKENDS))}"
            )
        self.inner = inner
        self.inner_kwargs = dict(inner_kwargs or {})
        self.n_shards = int(n_shards)
        self.executor = executor
        self.n_workers = n_workers
        self.query_block = int(query_block)
        self._points: np.ndarray | None = None
        self._offsets: np.ndarray | None = None
        self._live: list[tuple[int, int, int]] = []  # (shard_id, lo, hi)
        self._executor_obj = None
        self._parent_builds = 0
        self._stats_snapshot: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _make_inner(self):
        if callable(self.inner):
            return self.inner()
        return make_inner_backend(self.inner, self.inner_kwargs)

    def build(self, X: np.ndarray) -> "ShardedIndex":
        X = np.ascontiguousarray(np.asarray(X, dtype=np.float64))
        if X.ndim != 2:
            raise InvalidParameterError(f"X must be 2-d; got shape {X.shape}")
        self.close()
        self._points = X
        self._parent_builds = 0
        self._stats_snapshot = {}
        self._offsets = shard_offsets(X.shape[0], self.n_shards)
        self._live = [
            (s, int(self._offsets[s]), int(self._offsets[s + 1]))
            for s in range(self.n_shards)
            if self._offsets[s + 1] > self._offsets[s]
        ]
        n_workers = self.n_workers or max(
            1, min(len(self._live) or 1, os.cpu_count() or 1)
        )
        entry = _EXECUTOR_REGISTRY[self.executor.name]
        if not self._live:
            # Zero live shards (empty dataset): nothing to execute, and a
            # zero-byte SharedMemory segment is illegal — every executor
            # degenerates to the task-free serial one.
            self._executor_obj = _SerialExecutor({})
        elif not entry.local:
            bounds = tuple((lo, hi) for _, lo, hi in self._live)
            # Re-key shard ids to positions in the live list so worker
            # bounds index directly.
            self._live = [(pos, lo, hi) for pos, (_, lo, hi) in enumerate(self._live)]
            self._executor_obj = entry.make(
                X, bounds, self.inner, self.inner_kwargs, n_workers, self.executor
            )
        else:
            indexes = {
                s: self._make_inner().build(X[lo:hi]) for s, lo, hi in self._live
            }
            self._parent_builds = len(indexes)
            self._executor_obj = entry.make_local(indexes, n_workers)
        return self

    def close(self) -> None:
        """Release executor resources (pool, shared memory). Idempotent.

        The final build accounting is snapshotted first, so
        :meth:`stats` keeps answering after the pools are gone.
        """
        if self._executor_obj is not None:
            self._stats_snapshot = self._collect_stats()
            self._executor_obj.close()
            self._executor_obj = None

    def __enter__(self) -> "ShardedIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def n_live_shards(self) -> int:
        """Number of non-empty shards after :meth:`build`."""
        self._require_built()
        return len(self._live)

    def _collect_stats(self) -> dict[str, int]:
        stats = {
            "shard_live_shards": len(self._live),
            "shard_inner_builds": self._parent_builds,
            "shard_rebalances": 0,
        }
        # Duck-typed: any executor that owns building in its workers
        # (process, remote, registered externals) reports its own
        # counters through collect_stats().
        collect = getattr(self._executor_obj, "collect_stats", None)
        if collect is not None:
            snapshot = collect()
            stats["shard_inner_builds"] = snapshot["inner_builds"]
            stats["shard_rebalances"] = snapshot["n_rebalances"]
        return stats

    def stats(self) -> dict[str, int]:
        """Instrumented build accounting of the current fit.

        ``shard_inner_builds`` counts inner-index constructions since
        :meth:`build`: eager per-shard builds for the serial/thread
        executors, lazy in-worker builds (queried from the live workers)
        for the process executor. The build-once contract is
        ``shard_inner_builds == shard_live_shards`` once every shard has
        served a query — never ``n_workers × n_shards``.
        ``shard_rebalances`` counts worker-death rebalancing events.
        After :meth:`close` the snapshot taken at close time is returned.
        """
        self._require_built()
        if self._executor_obj is not None:
            self._stats_snapshot = self._collect_stats()
        return dict(self._stats_snapshot)

    def _require_executor(self):
        self._require_built()
        if self._executor_obj is None:
            raise NotFittedError(
                "ShardedIndex has been closed; call build() again to reopen"
            )
        return self._executor_obj

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def shard_indexes(self) -> dict[int, object]:
        """The built per-shard inner indexes, keyed by live shard id.

        Only the local (serial/thread) executors hold their indexes in
        this process; the process and remote executors' live in worker
        memory, so they cannot be handed out from the parent.
        (:func:`repro.persistence.save_index` no longer needs them — it
        rebuilds per-shard indexes parent-side when serializing a
        worker-held executor.)
        """
        executor = self._require_executor()
        indexes = getattr(executor, "_indexes", None)
        if indexes is None:
            from repro.exceptions import PersistenceError

            raise PersistenceError(
                f"a {self.executor.name!r}-sharded index keeps its shard "
                "indexes in worker memory; they cannot be handed out from "
                "the parent process"
            )
        return dict(indexes)

    def _attach_loaded(
        self, points, offsets, live, indexes, artifact_path=None
    ) -> "ShardedIndex":
        """Adopt reloaded per-shard state (repro.persistence's seam).

        ``points`` is typically a read-only memory map and is adopted
        as-is — reattaching never copies the matrix. The process
        executor cannot be reconstructed from artifacts (its workers
        rebuild from raw points, defeating the point of persisting the
        built trees), so a saved process-sharded spec reattaches on the
        thread executor instead. A remote spec reattaches through the
        pool: ``artifact_path`` travels to the workers, which
        :func:`~repro.persistence.load_index` their pinned shards from
        the shared filesystem (``indexes`` may then be None — nothing is
        deserialized parent-side).
        """
        self.close()
        self._points = points
        self._parent_builds = 0
        self._stats_snapshot = {}
        self._offsets = np.asarray(offsets, dtype=np.int64)
        self._live = [(int(s), int(lo), int(hi)) for s, lo, hi in live]
        name = self.executor.name
        if name == "remote" and self._live:
            from repro.remote.pool import RemoteExecutor

            self._executor_obj = RemoteExecutor(
                X=np.asarray(points, dtype=np.float64),
                shards={s: (lo, hi) for s, lo, hi in self._live},
                inner_name=self.inner,
                inner_kwargs=self.inner_kwargs,
                options=self.executor.options,
                artifact_path=artifact_path,
            )
            return self
        indexes = dict(indexes)
        if name in ("thread", "process") and self._live:
            n_workers = self.n_workers or max(
                1, min(len(self._live), os.cpu_count() or 1)
            )
            self._executor_obj = _ThreadExecutor(indexes, n_workers)
        else:
            self._executor_obj = _SerialExecutor(indexes)
        return self

    # ------------------------------------------------------------------
    # Batched queries (the native forms; scalars route through them)
    # ------------------------------------------------------------------

    def batch_range_query(self, Q: np.ndarray, eps: float) -> list[np.ndarray]:
        executor = self._require_executor()
        Q = self._as_query_matrix(Q)
        n_queries = Q.shape[0]
        out: list[np.ndarray] = []
        starts = [lo for _, lo, _ in self._live]
        for block_lo in range(0, n_queries, self.query_block):
            Qb = Q[block_lo : block_lo + self.query_block]
            if not self._live:
                out.extend(np.empty(0, dtype=np.int64) for _ in range(Qb.shape[0]))
                continue
            calls = [(shard_id, (Qb, eps)) for shard_id, _, _ in self._live]
            results = executor.run("range", calls)
            per_shard = [csr_to_rows(indptr, flat) for indptr, flat in results]
            # Registered backends return sorted rows over disjoint
            # ascending shards: concatenation is the merged answer. A
            # factory inner makes no such promise and takes the general
            # sort-and-dedup kernel.
            if isinstance(self.inner, str):
                out.extend(concat_shard_rows(per_shard, starts, Qb.shape[0]))
            else:
                out.extend(merge_shard_rows(per_shard, starts, n_queries=Qb.shape[0]))
        return out

    def batch_range_count(self, Q: np.ndarray, eps: float) -> np.ndarray:
        executor = self._require_executor()
        Q = self._as_query_matrix(Q)
        n_queries = Q.shape[0]
        counts = np.zeros(n_queries, dtype=np.int64)
        for block_lo in range(0, n_queries, self.query_block):
            block_hi = min(block_lo + self.query_block, n_queries)
            Qb = Q[block_lo:block_hi]
            if not self._live:
                continue
            calls = [(shard_id, (Qb, eps)) for shard_id, _, _ in self._live]
            for shard_counts in executor.run("count", calls):
                counts[block_lo:block_hi] += shard_counts
        return counts

    def batch_knn_query(
        self, Q: np.ndarray, k: int
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        executor = self._require_executor()
        if k <= 0:
            raise InvalidParameterError(f"k must be positive; got {k}")
        Q = self._as_query_matrix(Q)
        n_queries = Q.shape[0]
        idx_out: list[np.ndarray] = []
        dist_out: list[np.ndarray] = []
        starts = [lo for _, lo, _ in self._live]
        for block_lo in range(0, n_queries, self.query_block):
            Qb = Q[block_lo : block_lo + self.query_block]
            if not self._live:
                idx_out.extend(np.empty(0, dtype=np.int64) for _ in range(Qb.shape[0]))
                dist_out.extend(np.empty(0) for _ in range(Qb.shape[0]))
                continue
            calls = [
                (shard_id, (Qb, min(k, hi - lo))) for shard_id, lo, hi in self._live
            ]
            results = executor.run("knn", calls)
            per_shard_idx = [
                csr_to_rows(indptr, flat_idx) for indptr, flat_idx, _ in results
            ]
            per_shard_dist = [
                csr_to_rows(indptr, flat_dist) for indptr, _, flat_dist in results
            ]
            idx_rows, dist_rows = merge_knn_rows(
                per_shard_idx, per_shard_dist, starts, k, n_queries=Qb.shape[0]
            )
            idx_out.extend(idx_rows)
            dist_out.extend(dist_rows)
        return idx_out, dist_out

    # ------------------------------------------------------------------
    # Scalar queries (single-row batches)
    # ------------------------------------------------------------------

    def range_query(self, q: np.ndarray, eps: float) -> np.ndarray:
        (row,) = self.batch_range_query(np.asarray(q, dtype=np.float64)[None, :], eps)
        return row

    def range_count(self, q: np.ndarray, eps: float) -> int:
        (count,) = self.batch_range_count(np.asarray(q, dtype=np.float64)[None, :], eps)
        return int(count)

    def knn_query(self, q: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        idx_rows, dist_rows = self.batch_knn_query(
            np.asarray(q, dtype=np.float64)[None, :], k
        )
        return idx_rows[0], dist_rows[0]


# ----------------------------------------------------------------------
# Engine-level sharding configuration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardingConfig:
    """How :class:`~repro.index.engine.NeighborhoodCache` shards queries.

    ``executor`` accepts an :class:`ExecutorSpec`, a registered name
    string, or a spec wire dict, and is stored coerced to an
    :class:`ExecutorSpec` — so configs compare, hash, and serialize on
    the canonical form regardless of how they were spelled.
    """

    n_shards: int = 4
    executor: "ExecutorSpec | str" = "serial"
    n_workers: int | None = None
    query_block: int = DEFAULT_QUERY_BLOCK

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise InvalidParameterError(f"n_shards must be >= 1; got {self.n_shards}")
        object.__setattr__(self, "executor", ExecutorSpec.coerce(self.executor))
        if self.n_workers is not None and self.n_workers < 1:
            raise InvalidParameterError(f"n_workers must be >= 1; got {self.n_workers}")
        if self.query_block < 1:
            raise InvalidParameterError(
                f"query_block must be >= 1; got {self.query_block}"
            )

    def make_index(self, inner: str, inner_kwargs: dict) -> "ShardedIndex":
        """An unbuilt :class:`ShardedIndex` configured per this config."""
        return ShardedIndex(
            inner=inner,
            inner_kwargs=inner_kwargs,
            n_shards=self.n_shards,
            executor=self.executor,
            n_workers=self.n_workers,
            query_block=self.query_block,
        )


# The PR 5 thread-local deprecation shims completed their cycle: there
# is no ambient sharding state at all anymore. The entry points survive
# only to raise a typed error naming the ExecutionConfig replacement.


def set_sharding(config=None):
    """Removed: there is no ambient sharding state to install.

    Raises :class:`~repro.exceptions.RemovedAPIError` — pass an
    :class:`~repro.engine_config.ExecutionConfig` with
    ``sharding=ShardingConfig(...)`` to the clusterer (or to
    :func:`repro.cluster`) instead.
    """
    raise RemovedAPIError(
        "set_sharding() was removed after its deprecation cycle; pass "
        "ExecutionConfig(sharding=ShardingConfig(...)) to the clusterer "
        "(or repro.cluster) instead"
    )


def sharding_config() -> None:
    """Always None: the ambient thread-local sharding scope is gone.

    Kept so hosts probing for ambient state keep working; execution is
    configured exclusively through
    :class:`~repro.engine_config.ExecutionConfig`.
    """
    return None


def sharded_queries(config=None, **fields):
    """Removed: there is no ambient sharding scope to enter.

    Raises :class:`~repro.exceptions.RemovedAPIError` — pass an
    :class:`~repro.engine_config.ExecutionConfig` with
    ``sharding=ShardingConfig(...)`` to the clusterer (or to
    :func:`repro.cluster`) instead.
    """
    raise RemovedAPIError(
        "sharded_queries() was removed after its deprecation cycle; pass "
        "ExecutionConfig(sharding=ShardingConfig(...)) to the clusterer "
        "(or repro.cluster) instead"
    )


def maybe_shard(index, config: ShardingConfig | None = None):
    """Wrap a *fitted* single index per the active sharding configuration.

    This is the fallback wrap-a-fitted-index path: it re-fits per-shard
    copies of ``index``'s configuration over its own points, paying the
    already-done whole-dataset build a second time. Hosts that can defer
    the build should hand the *unbuilt* index to
    :func:`resolve_engine_index` instead, which builds the shards
    directly.

    Returns ``index`` unchanged when sharding is disabled, when the index
    is already sharded, or when its type has no picklable rebuild spec
    (custom user indexes keep working, just unsharded). A recognised
    index whose points are unavailable — not built yet, or a subclass
    that dropped the public ``points`` property — is returned unsharded
    with a :class:`RuntimeWarning` naming the reason, never silently.

    ``config`` follows the :class:`~repro.engine_config.ExecutionConfig`
    convention: both None (unset) and ``False`` (explicitly disabled)
    mean no sharding — with the ambient thread-local scope retired,
    there is nothing left for *unset* to fall back to.
    """
    if config is False:
        config = None
    if config is None or isinstance(index, ShardedIndex):
        return index
    spec = backend_spec_of(index)
    if spec is None:
        return index
    try:
        points = index.points
    except NotFittedError:
        warnings.warn(
            f"sharding is active but this {type(index).__name__} has not "
            "been built: returning it unsharded (build it first, or hand "
            "the unbuilt index to resolve_engine_index for a "
            "shard-before-build fit)",
            RuntimeWarning,
            stacklevel=2,
        )
        return index
    except AttributeError:
        points = None
    if points is None:
        warnings.warn(
            f"sharding is active but {type(index).__name__} exposes no "
            "public 'points' property: returning it unsharded",
            RuntimeWarning,
            stacklevel=2,
        )
        return index
    name, kwargs = spec
    return config.make_index(name, kwargs).build(points)


def resolve_engine_index(index, X: np.ndarray, config: ShardingConfig | None = None):
    """Resolve the engine's query index, building shard-first when possible.

    The shard-before-build seam of the batched engine
    (:class:`~repro.index.engine.NeighborhoodCache`): hosts hand over the
    *unbuilt* backend they would have fitted themselves, and

    * with sharding active and a registered backend spec, the per-shard
      indexes are built directly over ``X`` — the whole-dataset index is
      never constructed, so a sharded fit pays exactly ``n_live_shards``
      inner builds;
    * with sharding active but no picklable spec (a custom unbuilt
      index), the single index is built and used unsharded, with a
      :class:`RuntimeWarning`;
    * with sharding inactive, the single index is built over ``X``
      exactly as the host would have done.

    A *fitted* index takes the legacy :func:`maybe_shard` fallback,
    which re-fits shard copies over the index's own points (one
    redundant whole-dataset build — the price of handing over a built
    artifact).

    Returns ``(resolved_index, owned)``. ``owned`` means the resolver
    *built* the result — including the in-place build of an unbuilt
    object the host handed over — and the host should treat it as the
    engine's to ``close()``; only a fitted index passed through
    untouched stays the caller's (``owned`` False). ``config`` is a
    :class:`ShardingConfig`, or None / ``False`` for no sharding.
    """
    if config is False:
        config = None
    built = getattr(index, "is_built", None)
    if built is None or built:
        wrapped = maybe_shard(index, config)
        return wrapped, wrapped is not index
    if isinstance(index, ShardedIndex):
        return index.build(X), True
    if config is not None:
        spec = backend_spec_of(index)
        if spec is not None:
            name, kwargs = spec
            return config.make_index(name, kwargs).build(X), True
        warnings.warn(
            f"sharding is active but {type(index).__name__} has no "
            "registered rebuild spec: building it unsharded",
            RuntimeWarning,
            stacklevel=2,
        )
    return index.build(X), True
