"""Abstract interface shared by all neighbor indexes.

Besides the :class:`NeighborIndex` contract this module hosts the shared
kernels of the vectorized tree traversals (cover tree, k-means tree):
CSR frontier expansion, pairwise distance evaluation for (query, node)
frontier pairs, and grouping of flat hit pairs back into per-query
arrays. They are plain functions so both trees — and any future
backend — use identical, separately-tested building blocks.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.distances.matrix import iter_distance_blocks
from repro.exceptions import NotFittedError

__all__ = [
    "NeighborIndex",
    "expand_csr",
    "group_hit_pairs",
    "grouped_pair_distances",
]

#: Upper bound on the floats materialized per chunk in the pairwise
#: distance path (~32 MB of float64 temporaries at the default).
_PAIR_CHUNK_FLOATS = 1 << 22


def expand_csr(
    offsets: np.ndarray, flat: np.ndarray, parents: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gather ``flat[offsets[p] : offsets[p + 1]]`` for every parent at once.

    The standard vectorized multi-range (CSR) gather: returns
    ``(counts, values)`` where ``counts[i]`` is the slice length of
    ``parents[i]`` and ``values`` concatenates the slices in parent
    order, with no Python loop over parents. This is the frontier
    expansion step of the level-synchronous tree traversals: parents are
    the live frontier nodes, values their children.
    """
    starts = offsets[parents]
    counts = offsets[parents + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return counts, np.empty(0, dtype=flat.dtype)
    ends = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return counts, flat[np.repeat(starts, counts) + within]


def grouped_pair_distances(
    Q: np.ndarray,
    q_flat: np.ndarray,
    col_offsets: np.ndarray,
    C: np.ndarray,
    Q_sq: np.ndarray | None = None,
    C_sq: np.ndarray | None = None,
    dense_work_factor: float = 12.0,
    block_size: int = 1024,
    squared: bool = False,
) -> np.ndarray:
    """Euclidean distances for the (query, column) pairs of a CSR frontier.

    ``C`` holds one row per frontier column (tree node); column ``j``
    pairs with the queries ``q_flat[col_offsets[j] : col_offsets[j + 1]]``.
    Returns one distance per entry of ``q_flat``, in order. This is the
    distance kernel of the level-synchronous tree traversals, and it
    picks between two vectorized strategies per call:

    * **dense** — compute the full column-by-query distance matrix in
      row blocks via :func:`~repro.distances.matrix.iter_distance_blocks`
      (one BLAS product per block) and fancy-index the requested pairs
      out of each block. Best near the top of a tree, where every
      query's frontier is the same handful of nodes, so almost every
      matrix entry is needed. Chosen when the matrix holds at most
      ``dense_work_factor`` entries per requested pair, which bounds the
      wasted work; blocking bounds peak memory regardless. The default
      factor is deliberately generous because one GEMM entry costs
      roughly an order of magnitude less than one gathered pairwise
      entry.
    * **pairwise** — evaluate exactly the requested pairs in bounded
      chunks with the same ``||c - q||^2 = ||c||^2 - 2<c, q> + ||q||^2``
      expansion. Best deep in a tree, where frontiers are sparse and
      per-query distinct.

    ``Q_sq`` / ``C_sq`` are optional precomputed squared row norms
    (callers traversing many levels amortize them across calls). With
    ``squared=True`` the clipped *squared* distances are returned —
    callers comparing against thresholds square the threshold instead
    and skip a sqrt over every pair.
    """
    n_pairs = q_flat.shape[0]
    n_cols = C.shape[0]
    if n_pairs == 0:
        return np.empty(0)
    col_of_entry = np.repeat(np.arange(n_cols, dtype=np.int64), np.diff(col_offsets))
    out = np.empty(n_pairs)
    if Q.shape[0] * n_cols <= dense_work_factor * n_pairs:
        metric = "sqeuclidean" if squared else "euclidean"
        for start, stop, block in iter_distance_blocks(
            C, Q, block_size=block_size, metric=metric
        ):
            lo = col_offsets[start]
            hi = col_offsets[stop]
            out[lo:hi] = block[col_of_entry[lo:hi] - start, q_flat[lo:hi]]
        return out
    if Q_sq is None:
        Q_sq = np.einsum("ij,ij->i", Q, Q)
    if C_sq is None:
        C_sq = np.einsum("ij,ij->i", C, C)
    chunk = max(1, _PAIR_CHUNK_FLOATS // max(1, Q.shape[1]))
    for start in range(0, n_pairs, chunk):
        stop = min(start + chunk, n_pairs)
        q_idx = q_flat[start:stop]
        c_idx = col_of_entry[start:stop]
        sq = (
            C_sq[c_idx]
            - 2.0 * np.einsum("ij,ij->i", Q[q_idx], C[c_idx])
            + Q_sq[q_idx]
        )
        np.clip(sq, 0.0, None, out=sq)
        out[start:stop] = sq if squared else np.sqrt(sq)
    return out


def group_hit_pairs(
    hit_q: np.ndarray, hit_p: np.ndarray, n_points: int, n_queries: int
) -> list[np.ndarray]:
    """Split flat (query, point) hit pairs into per-query sorted arrays.

    Row ``i`` of the result holds, in ascending order, every ``hit_p``
    whose ``hit_q`` equals ``i`` — the output convention of
    ``batch_range_query``. Queries with no hits get empty arrays.

    Sorts once on the combined key ``hit_q * n_points + hit_p`` (a
    single int64 sort beats a two-key lexsort on multi-million-pair hit
    sets) and splits on query boundaries.
    """
    if hit_q.shape[0] == 0:
        return [np.empty(0, dtype=np.int64) for _ in range(n_queries)]
    span = np.int64(max(n_points, 1))
    combined = np.sort(hit_q * span + hit_p)
    bounds = np.searchsorted(combined, np.arange(n_queries + 1, dtype=np.int64) * span)
    return [
        combined[bounds[i] : bounds[i + 1]] - np.int64(i) * span
        for i in range(n_queries)
    ]


class NeighborIndex(abc.ABC):
    """A point set supporting distance-threshold and KNN queries.

    Implementations store the dataset at ``build`` time and answer queries
    against it. Distances in the public API are always *cosine* distances
    on unit vectors — implementations that work in another metric
    internally (cover tree, k-means tree, grid) do their own conversion.
    """

    _points: np.ndarray | None = None

    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        return 0 if self._points is None else int(self._points.shape[0])

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has run (so queries and ``points`` work).

        Hosts use this to tell an index they must still build from one
        they can query — the batched engine's shard-before-build seam
        (:func:`~repro.index.sharded.resolve_engine_index`) keys on it.
        """
        return self._points is not None

    @property
    def points(self) -> np.ndarray:
        """The indexed point matrix, shape ``(n_points, dim)``.

        The public accessor sharding relies on: wrapping a fitted index
        into a :class:`~repro.index.sharded.ShardedIndex` re-fits shard
        copies over exactly these rows. Raises :class:`NotFittedError`
        before :meth:`build`.
        """
        if self._points is None:
            raise NotFittedError(f"{type(self).__name__} has not been built yet")
        return self._points

    @abc.abstractmethod
    def build(self, X: np.ndarray) -> "NeighborIndex":
        """Index the rows of ``X`` (unit-normalized) and return ``self``."""

    @abc.abstractmethod
    def range_query(self, q: np.ndarray, eps: float) -> np.ndarray:
        """Indices of points with cosine distance to ``q`` strictly below ``eps``.

        Matches the paper's neighborhood definition
        ``N = {Q | d(P, Q) < eps}``; a query equal to an indexed point
        therefore returns that point itself.
        """

    def range_count(self, q: np.ndarray, eps: float) -> int:
        """Number of points within cosine distance ``eps`` of ``q``."""
        return int(self.range_query(q, eps).size)

    # ------------------------------------------------------------------
    # Batched queries
    #
    # The batched forms are the engine API every clusterer goes through
    # (see repro.index.engine). The base implementations loop over the
    # scalar queries — row-for-row identical by construction — so every
    # index is batch-capable; backends with a vectorized kernel
    # (BruteForceIndex) override them with blockwise implementations.
    # ------------------------------------------------------------------

    @staticmethod
    def _as_query_matrix(Q: np.ndarray) -> np.ndarray:
        """Normalize a query batch to 2-d float64 (a 1-d row is one query)."""
        Q = np.asarray(Q, dtype=np.float64)
        if Q.ndim == 1:
            Q = Q[None, :]
        return Q

    def batch_range_query(self, Q: np.ndarray, eps: float) -> list[np.ndarray]:
        """Neighbor index arrays for every row of ``Q`` at threshold ``eps``.

        Row ``i`` of the result equals ``range_query(Q[i], eps)``. An
        empty batch (shape ``(0, dim)``) returns an empty list.
        """
        self._require_built()
        return [self.range_query(q, eps) for q in self._as_query_matrix(Q)]

    def batch_range_count(self, Q: np.ndarray, eps: float) -> np.ndarray:
        """Neighbor counts for every row of ``Q`` at threshold ``eps``."""
        self._require_built()
        Q = self._as_query_matrix(Q)
        return np.fromiter(
            (self.range_count(q, eps) for q in Q), dtype=np.int64, count=Q.shape[0]
        )

    def batch_knn_query(
        self, Q: np.ndarray, k: int
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Per-row KNN results: ``(index_arrays, cosine_distance_arrays)``.

        Returned as two ragged lists rather than matrices because
        approximate indexes may surface fewer than ``k`` candidates for
        some rows.
        """
        self._require_built()
        indices: list[np.ndarray] = []
        dists: list[np.ndarray] = []
        for q in self._as_query_matrix(Q):
            idx, d = self.knn_query(q, k)
            indices.append(idx)
            dists.append(d)
        return indices, dists

    @abc.abstractmethod
    def knn_query(self, q: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """The ``k`` nearest indexed points to ``q``.

        Returns ``(indices, cosine_distances)`` sorted by ascending
        distance. Approximate indexes may miss true neighbors; exactness
        is documented per implementation.
        """

    def _require_built(self) -> None:
        if self._points is None:
            raise NotFittedError(f"{type(self).__name__} has not been built yet")

    # ------------------------------------------------------------------
    # Persistence
    #
    # Backends expose their built state as a flat dict of arrays
    # (to_arrays / from_arrays); the artifact layer (repro.persistence)
    # handles the manifest, checksums, and memory-mapping. from_arrays
    # must accept the arrays exactly as to_arrays produced them —
    # including read-only memory maps — without copying the point
    # matrix.
    # ------------------------------------------------------------------

    def to_arrays(self) -> dict[str, np.ndarray]:
        """The built state as named arrays; requires :meth:`build`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support persistence"
        )

    def from_arrays(self, arrays: dict) -> "NeighborIndex":
        """Restore built state from :meth:`to_arrays` output; returns self."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support persistence"
        )

    def save(self, path) -> "NeighborIndex":
        """Persist the built index as an artifact directory at ``path``.

        See :func:`repro.persistence.save_index` for the format; load it
        back with :meth:`load` or :func:`repro.persistence.load_index`.
        """
        from repro.persistence import save_index

        save_index(self, path)
        return self

    @classmethod
    def load(cls, path, *, mmap: bool = True, verify: bool = True):
        """Load an index saved with :meth:`save`, memory-mapped by default.

        Called on a concrete class, the artifact must hold that type
        (a :class:`~repro.exceptions.PersistenceError` otherwise);
        called on :class:`NeighborIndex`, any index artifact loads.
        """
        from repro.persistence import _check_loaded_type, load_index

        index = load_index(path, mmap=mmap, verify=verify)
        if cls is not NeighborIndex:
            _check_loaded_type(index, cls, path)
        return index
