"""Abstract interface shared by all neighbor indexes."""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import NotFittedError

__all__ = ["NeighborIndex"]


class NeighborIndex(abc.ABC):
    """A point set supporting distance-threshold and KNN queries.

    Implementations store the dataset at ``build`` time and answer queries
    against it. Distances in the public API are always *cosine* distances
    on unit vectors — implementations that work in another metric
    internally (cover tree, k-means tree, grid) do their own conversion.
    """

    _points: np.ndarray | None = None

    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        return 0 if self._points is None else int(self._points.shape[0])

    @property
    def points(self) -> np.ndarray:
        """The indexed point matrix, shape ``(n_points, dim)``."""
        if self._points is None:
            raise NotFittedError(f"{type(self).__name__} has not been built yet")
        return self._points

    @abc.abstractmethod
    def build(self, X: np.ndarray) -> "NeighborIndex":
        """Index the rows of ``X`` (unit-normalized) and return ``self``."""

    @abc.abstractmethod
    def range_query(self, q: np.ndarray, eps: float) -> np.ndarray:
        """Indices of points with cosine distance to ``q`` strictly below ``eps``.

        Matches the paper's neighborhood definition
        ``N = {Q | d(P, Q) < eps}``; a query equal to an indexed point
        therefore returns that point itself.
        """

    def range_count(self, q: np.ndarray, eps: float) -> int:
        """Number of points within cosine distance ``eps`` of ``q``."""
        return int(self.range_query(q, eps).size)

    @abc.abstractmethod
    def knn_query(self, q: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """The ``k`` nearest indexed points to ``q``.

        Returns ``(indices, cosine_distances)`` sorted by ascending
        distance. Approximate indexes may miss true neighbors; exactness
        is documented per implementation.
        """

    def _require_built(self) -> None:
        if self._points is None:
            raise NotFittedError(f"{type(self).__name__} has not been built yet")
