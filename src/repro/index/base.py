"""Abstract interface shared by all neighbor indexes."""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import NotFittedError

__all__ = ["NeighborIndex"]


class NeighborIndex(abc.ABC):
    """A point set supporting distance-threshold and KNN queries.

    Implementations store the dataset at ``build`` time and answer queries
    against it. Distances in the public API are always *cosine* distances
    on unit vectors — implementations that work in another metric
    internally (cover tree, k-means tree, grid) do their own conversion.
    """

    _points: np.ndarray | None = None

    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        return 0 if self._points is None else int(self._points.shape[0])

    @property
    def points(self) -> np.ndarray:
        """The indexed point matrix, shape ``(n_points, dim)``."""
        if self._points is None:
            raise NotFittedError(f"{type(self).__name__} has not been built yet")
        return self._points

    @abc.abstractmethod
    def build(self, X: np.ndarray) -> "NeighborIndex":
        """Index the rows of ``X`` (unit-normalized) and return ``self``."""

    @abc.abstractmethod
    def range_query(self, q: np.ndarray, eps: float) -> np.ndarray:
        """Indices of points with cosine distance to ``q`` strictly below ``eps``.

        Matches the paper's neighborhood definition
        ``N = {Q | d(P, Q) < eps}``; a query equal to an indexed point
        therefore returns that point itself.
        """

    def range_count(self, q: np.ndarray, eps: float) -> int:
        """Number of points within cosine distance ``eps`` of ``q``."""
        return int(self.range_query(q, eps).size)

    # ------------------------------------------------------------------
    # Batched queries
    #
    # The batched forms are the engine API every clusterer goes through
    # (see repro.index.engine). The base implementations loop over the
    # scalar queries — row-for-row identical by construction — so every
    # index is batch-capable; backends with a vectorized kernel
    # (BruteForceIndex) override them with blockwise implementations.
    # ------------------------------------------------------------------

    @staticmethod
    def _as_query_matrix(Q: np.ndarray) -> np.ndarray:
        """Normalize a query batch to 2-d float64 (a 1-d row is one query)."""
        Q = np.asarray(Q, dtype=np.float64)
        if Q.ndim == 1:
            Q = Q[None, :]
        return Q

    def batch_range_query(self, Q: np.ndarray, eps: float) -> list[np.ndarray]:
        """Neighbor index arrays for every row of ``Q`` at threshold ``eps``.

        Row ``i`` of the result equals ``range_query(Q[i], eps)``. An
        empty batch (shape ``(0, dim)``) returns an empty list.
        """
        self._require_built()
        return [self.range_query(q, eps) for q in self._as_query_matrix(Q)]

    def batch_range_count(self, Q: np.ndarray, eps: float) -> np.ndarray:
        """Neighbor counts for every row of ``Q`` at threshold ``eps``."""
        self._require_built()
        Q = self._as_query_matrix(Q)
        return np.fromiter(
            (self.range_count(q, eps) for q in Q), dtype=np.int64, count=Q.shape[0]
        )

    def batch_knn_query(
        self, Q: np.ndarray, k: int
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Per-row KNN results: ``(index_arrays, cosine_distance_arrays)``.

        Returned as two ragged lists rather than matrices because
        approximate indexes may surface fewer than ``k`` candidates for
        some rows.
        """
        self._require_built()
        indices: list[np.ndarray] = []
        dists: list[np.ndarray] = []
        for q in self._as_query_matrix(Q):
            idx, d = self.knn_query(q, k)
            indices.append(idx)
            dists.append(d)
        return indices, dists

    @abc.abstractmethod
    def knn_query(self, q: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """The ``k`` nearest indexed points to ``q``.

        Returns ``(indices, cosine_distances)`` sorted by ascending
        distance. Approximate indexes may miss true neighbors; exactness
        is documented per implementation.
        """

    def _require_built(self) -> None:
        if self._points is None:
            raise NotFittedError(f"{type(self).__name__} has not been built yet")
