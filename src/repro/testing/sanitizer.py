"""Runtime resource sanitizer: a pytest plugin that fails leaking tests.

The static side of the invariant lives in ``tools/reprolint`` (RPL001:
resources must be scoped). This is the dynamic side: around every test
it snapshots the OS-level resources the stack acquires — SharedMemory
segments in ``/dev/shm``, open socket file descriptors, and live child
processes — and fails any test that exits with more of them than it
started with. A leak the linter cannot see (a resource acquired through
three layers of indirection) still cannot get past the snapshot diff.

Activate it explicitly::

    pytest -p repro.testing.sanitizer

or from a conftest::

    pytest_plugins = ["repro.testing.sanitizer"]

Exempt a test that leaks by design (e.g. it exercises crash paths whose
cleanup happens at process exit)::

    @pytest.mark.allow_resource_leaks

A ``faulthandler``-based watchdog dumps all thread stacks if a single
test runs longer than ``REPRO_SANITIZER_TIMEOUT`` seconds (default 300,
``0`` disables), so a deadlocked remote/thread suite produces a
traceback instead of a silent CI hang.

Environment knobs (env vars, not CLI options, so the plugin works the
same whether it is loaded via ``-p``, ``pytest_plugins``, or an ini):

``REPRO_SANITIZER_TIMEOUT``
    Per-test watchdog seconds (default ``300``; ``0`` disables).
``REPRO_SANITIZER_RETRIES``
    Recheck rounds before declaring a leak (default ``4``). Each round
    sleeps 50 ms; this absorbs executor children that are mid-exit.
"""

from __future__ import annotations

import dataclasses
import faulthandler
import gc
import multiprocessing
import os
import time

import pytest

__all__ = ["ResourceSnapshot", "capture_snapshot"]

_SHM_DIR = "/dev/shm"
_FD_DIR = "/proc/self/fd"


def _live_shm_segments() -> frozenset[str]:
    """Names of python SharedMemory segments currently in /dev/shm."""
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:
        return frozenset()  # non-Linux: shm tracking degrades to a no-op
    return frozenset(name for name in entries if name.startswith("psm_"))


def _open_socket_fds() -> frozenset[str]:
    """``fd=socket:[inode]`` strings for every open socket fd."""
    try:
        fds = os.listdir(_FD_DIR)
    except OSError:
        return frozenset()  # no procfs: socket tracking degrades
    out = set()
    for fd in fds:
        try:
            target = os.readlink(os.path.join(_FD_DIR, fd))
        except OSError:
            continue  # fd closed between listdir and readlink
        if target.startswith("socket:"):
            out.add(f"{fd}={target}")
    return frozenset(out)


def _live_children() -> frozenset[int]:
    """PIDs of live child processes (reaps already-exited ones)."""
    return frozenset(p.pid for p in multiprocessing.active_children() if p.pid)


@dataclasses.dataclass(frozen=True)
class ResourceSnapshot:
    """Point-in-time view of the leak-prone resources this process holds."""

    shm: frozenset[str]
    sockets: frozenset[str]
    children: frozenset[int]

    def leaks_since(self, before: "ResourceSnapshot") -> dict[str, list[str]]:
        """Resources present now that were not in ``before``; empty = clean."""
        leaks: dict[str, list[str]] = {}
        if self.shm - before.shm:
            leaks["shm"] = sorted(self.shm - before.shm)
        if self.sockets - before.sockets:
            leaks["sockets"] = sorted(self.sockets - before.sockets)
        if self.children - before.children:
            leaks["children"] = sorted(map(str, self.children - before.children))
        return leaks


def capture_snapshot() -> ResourceSnapshot:
    return ResourceSnapshot(
        shm=_live_shm_segments(),
        sockets=_open_socket_fds(),
        children=_live_children(),
    )


def _settle_and_diff(before: ResourceSnapshot) -> dict[str, list[str]]:
    """Diff against ``before``, rechecking briefly to absorb teardown lag.

    Executor children and resource-tracker unlinks complete a beat after
    ``shutdown()`` returns; a leak must survive every recheck round to be
    reported.
    """
    retries = int(os.environ.get("REPRO_SANITIZER_RETRIES", "4"))
    gc.collect()
    leaks = capture_snapshot().leaks_since(before)
    for _ in range(max(retries, 0)):
        if not leaks:
            return {}
        time.sleep(0.05)
        gc.collect()
        leaks = capture_snapshot().leaks_since(before)
    return leaks


def _watchdog_seconds() -> float:
    try:
        return float(os.environ.get("REPRO_SANITIZER_TIMEOUT", "300"))
    except ValueError:
        return 300.0


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "allow_resource_leaks: exempt this test from the resource sanitizer "
        "(justify in a comment: why cleanup cannot happen in-test)",
    )


@pytest.fixture(autouse=True)
def _repro_resource_sanitizer(request: pytest.FixtureRequest):
    """Snapshot resources around each test; fail the test on a leak.

    Autouse + function-scoped means pytest instantiates this fixture
    before the test's own function-scoped fixtures and finalizes it
    after them — so their teardown runs inside the window, while
    module/session fixtures (long-lived pools) sit in the baseline.
    """
    if request.node.get_closest_marker("allow_resource_leaks"):
        yield
        return

    timeout = _watchdog_seconds()
    watchdog_armed = False
    if timeout > 0 and hasattr(faulthandler, "dump_traceback_later"):
        faulthandler.dump_traceback_later(timeout, exit=False)
        watchdog_armed = True

    before = capture_snapshot()
    try:
        yield
    finally:
        if watchdog_armed:
            faulthandler.cancel_dump_traceback_later()

    leaks = _settle_and_diff(before)
    if leaks:
        detail = "; ".join(
            f"{kind}: {', '.join(items)}" for kind, items in sorted(leaks.items())
        )
        pytest.fail(
            f"test leaked OS resources ({detail}) — close engines, "
            "sockets, and executors before returning, or mark the test "
            "with @pytest.mark.allow_resource_leaks and a justification",
            pytrace=False,
        )
