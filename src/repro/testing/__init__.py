"""Shared test/benchmark helpers: fixture data and reference algorithms.

Lives inside the package (rather than in a ``conftest.py``) so both test
trees — ``tests/`` and ``benchmarks/`` — and downstream users writing
their own differential tests can import the same helpers without relying
on pytest's conftest module injection, which breaks when two conftests
with the same bare module name are collected in one run.

``reference_dbscan`` is deliberately implemented independently of the
library code paths (full distance matrix + BFS) so algorithmic tests
compare two distinct implementations rather than a module with itself.

The runtime resource sanitizer lives in the ``repro.testing.sanitizer``
submodule (a pytest plugin — load it with ``-p repro.testing.sanitizer``;
it is intentionally not imported here so importing the helpers never
requires pytest).
"""

from __future__ import annotations

import numpy as np

from repro.distances import normalize_rows

__all__ = [
    "canonical",
    "make_blobs_on_sphere",
    "reference_dbscan",
    "write_benchmark_rows",
]


def write_benchmark_rows(path: str, rows: list[dict]) -> str:
    """Write one benchmark's measured rows as ``{"rows": [...]}`` JSON.

    The single writer shared by every micro-benchmark that feeds the CI
    regression gate (``benchmarks/check_regression.py`` expects exactly
    this shape); delegates to the atomic
    :func:`repro.experiments.reporting.save_json` so an interrupted run
    never leaves a torn file. Returns ``path`` for convenience.
    """
    # Imported lazily: repro.testing stays importable without dragging in
    # the experiments package.
    from repro.experiments.reporting import save_json

    save_json(path, {"rows": list(rows)})
    return path


def reference_dbscan(X: np.ndarray, eps: float, tau: int) -> np.ndarray:
    """Naive DBSCAN: O(n^2) matrix + breadth-first cluster expansion."""
    X = np.asarray(X, dtype=np.float64)
    n = X.shape[0]
    dists = 1.0 - X @ X.T
    neighbor_sets = [np.flatnonzero(dists[i] < eps) for i in range(n)]
    core = np.array([len(nbrs) >= tau for nbrs in neighbor_sets])
    labels = np.full(n, -1, dtype=np.int64)
    cluster = -1
    for start in range(n):
        if labels[start] != -1 or not core[start]:
            continue
        cluster += 1
        frontier = [start]
        labels[start] = cluster
        while frontier:
            p = frontier.pop()
            if not core[p]:
                continue
            for q in neighbor_sets[p]:
                if labels[q] == -1:
                    labels[q] = cluster
                    frontier.append(q)
    return labels


def canonical(labels: np.ndarray) -> np.ndarray:
    """Relabel clusters in first-appearance order (noise preserved)."""
    labels = np.asarray(labels)
    out = np.full_like(labels, -1)
    mapping: dict[int, int] = {}
    for i, label in enumerate(labels):
        if label == -1:
            continue
        if label not in mapping:
            mapping[label] = len(mapping)
        out[i] = mapping[label]
    return out


def make_blobs_on_sphere(
    n_per_cluster: int,
    n_clusters: int,
    dim: int,
    spread: float = 0.15,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Well-separated spherical blobs: easy ground truth for clustering."""
    rng = np.random.default_rng(seed)
    centers = normalize_rows(rng.normal(size=(n_clusters, dim)))
    parts, labels = [], []
    for c, center in enumerate(centers):
        pts = center[None, :] + spread * rng.normal(
            size=(n_per_cluster, dim)
        ) / np.sqrt(dim)
        parts.append(normalize_rows(pts))
        labels.append(np.full(n_per_cluster, c))
    X = np.vstack(parts)
    y = np.concatenate(labels)
    order = rng.permutation(X.shape[0])
    return X[order], y[order]
