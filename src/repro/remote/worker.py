"""The pool worker: a warm shard holder behind a TCP socket.

One worker process serves many client connections (one thread each) and
holds every shard index it has ever built or reattached in an in-memory
cache keyed by ``(dataset, inner spec, rows)`` — so a second fit (or a
different clusterer, or a new eps under an eps-independent inner
backend) against the same pool attaches to the cached index and pays
zero inner builds. Datasets arrive once per worker (content-addressed
by sha256 fingerprint) or never (persisted shard artifacts are loaded
from a shared filesystem via
:func:`repro.persistence.load_shard_index`).

Requests (see :mod:`repro.remote.protocol` for the framing):

``ping``
    Liveness + identity: ``{"ok", "pid"}``.
``ensure_dataset``
    ``{"fingerprint"}`` → ``{"have": bool}`` — lets the client skip the
    bulk upload when the worker already holds the matrix.
``put_dataset``
    ``{"fingerprint"}`` + array ``X`` → stores it content-addressed.
``attach``
    A shard spec (``shard``, see :func:`_shard_key`) → builds, loads,
    or cache-hits the shard index; ``{"built": bool}``.
``query``
    ``{"qop": range|count|knn, "arg": eps-or-k, "shard": spec}`` +
    array ``Q`` → runs the shard op (auto-attaching if needed — after a
    rebalance the new owner sees the shard for the first time mid-fit)
    and returns the op's CSR arrays plus ``{"built": bool}``.
``stats``
    Worker-global counters: ``{"inner_builds", "datasets", "indexes"}``.
``shutdown``
    Acknowledges, then stops the whole worker process.

Worker-side exceptions are caught per request and returned as
``{"error": {"type", "message"}}`` — a misbehaving request must not
take down a warm shard holder.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import threading
from collections import OrderedDict
from contextlib import contextmanager

import numpy as np

from repro.exceptions import InvalidParameterError, RemoteProtocolError, ReproError
from repro.index import sharded as _sharded
from repro.remote.protocol import recv_msg, send_msg

__all__ = ["ShardHolder", "serve", "worker_main"]


def dataset_fingerprint(X: np.ndarray) -> str:
    """Content address of a dataset: sha256 over bytes, shape and dtype."""
    import hashlib

    X = np.ascontiguousarray(X)
    digest = hashlib.sha256()
    digest.update(repr((X.shape, X.dtype.str)).encode())
    digest.update(X.data)
    return digest.hexdigest()


def _shard_key(shard: dict) -> tuple:
    """Cache key of one shard spec: dataset, inner spec, row range.

    ``shard`` carries either a ``dataset`` fingerprint (lazy-build mode)
    or an ``artifact`` path (persisted-shard mode), plus the inner
    backend name/kwargs, the shard id and its ``[lo, hi)`` rows.
    """
    source = (
        ("artifact", str(shard["artifact"]))
        if shard.get("artifact")
        else ("dataset", str(shard["dataset"]))
    )
    return (
        source,
        str(shard["inner"]),
        json.dumps(shard.get("inner_kwargs") or {}, sort_keys=True),
        int(shard["shard_id"]),
        int(shard["lo"]),
        int(shard["hi"]),
    )


def _close_indexes(indexes: list[object]) -> None:
    """Release evicted indexes outside the holder lock."""
    for index in indexes:
        closer = getattr(index, "close", None)
        if closer is not None:
            closer()


def _index_nbytes(index: object) -> int:
    """Cheap size estimate of a cached shard index: its data matrix.

    Structural arrays (tree nodes, CSR offsets) are a small fraction of
    the contiguous point copies, so the bytes cap is enforced against
    the dominant term only.
    """
    points = getattr(index, "_points", None)
    return int(points.nbytes) if isinstance(points, np.ndarray) else 0


class ShardHolder:
    """The worker's warm cache: datasets and built shard indexes.

    ``max_cached_shards`` / ``max_cached_bytes`` bound the shard-index
    cache with LRU eviction so a long-lived warm worker serving many
    datasets cannot grow without bound. Entries pinned by an in-flight
    query (:meth:`acquire`) are never evicted — the cache may overshoot
    its cap transiently while every resident entry is in use — and an
    evicted shard is simply rebuilt (and counted) on its next attach.
    """

    def __init__(
        self,
        max_cached_shards: int | None = None,
        max_cached_bytes: int | None = None,
    ) -> None:
        if max_cached_shards is not None and max_cached_shards < 1:
            raise InvalidParameterError(
                f"max_cached_shards must be >= 1; got {max_cached_shards}"
            )
        if max_cached_bytes is not None and max_cached_bytes < 1:
            raise InvalidParameterError(
                f"max_cached_bytes must be >= 1; got {max_cached_bytes}"
            )
        self.max_cached_shards = max_cached_shards
        self.max_cached_bytes = max_cached_bytes
        self._datasets: dict[str, np.ndarray] = {}
        self._indexes: OrderedDict[tuple, object] = OrderedDict()
        self._in_use: dict[tuple, int] = {}
        self._cached_bytes = 0
        self._lock = threading.Lock()
        self.n_builds = 0
        self.n_evictions = 0

    def has_dataset(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._datasets

    def put_dataset(self, fingerprint: str, X: np.ndarray) -> None:
        with self._lock:
            self._datasets.setdefault(fingerprint, X)

    def attach(self, shard: dict, *, pin: bool = False) -> tuple[object, bool]:
        """The shard's index, building or loading it on first sight.

        Returns ``(index, built)``; ``built`` is True only when this
        call constructed (or loaded) the index — the client sums these
        to counter-prove warm reuse. ``pin=True`` additionally marks the
        entry in use (ineligible for eviction) until the matching
        :meth:`release`; use :meth:`acquire` for the paired form.
        """
        key = _shard_key(shard)
        with self._lock:
            index = self._indexes.get(key)
            if index is not None:
                self._indexes.move_to_end(key)
                if pin:
                    self._in_use[key] = self._in_use.get(key, 0) + 1
                return index, False
        # Build outside the lock: shard builds are the expensive part
        # and two different shards must not serialize on each other.
        if shard.get("artifact"):
            from repro.persistence import load_shard_index

            index = load_shard_index(shard["artifact"], int(shard["shard_id"]))
        else:
            fingerprint = str(shard["dataset"])
            with self._lock:
                X = self._datasets.get(fingerprint)
            if X is None:
                raise RemoteProtocolError(
                    f"worker holds no dataset {fingerprint[:12]}…; the "
                    "client must put_dataset before attaching shards to it"
                )
            lo, hi = int(shard["lo"]), int(shard["hi"])
            index = _sharded.make_inner_backend(
                str(shard["inner"]), dict(shard.get("inner_kwargs") or {})
            ).build(np.ascontiguousarray(X[lo:hi]))
        with self._lock:
            winner = self._indexes.setdefault(key, index)
            built = winner is index
            self._indexes.move_to_end(key)
            if built:
                self.n_builds += 1
                self._cached_bytes += _index_nbytes(index)
            if pin:
                self._in_use[key] = self._in_use.get(key, 0) + 1
            evicted = self._evict_locked()
        _close_indexes(evicted)
        return winner, built

    def release(self, shard: dict) -> None:
        """Unpin one :meth:`attach(pin=True) <attach>` hold on the shard."""
        key = _shard_key(shard)
        with self._lock:
            count = self._in_use.get(key, 0) - 1
            if count > 0:
                self._in_use[key] = count
            else:
                self._in_use.pop(key, None)
            evicted = self._evict_locked()
        _close_indexes(evicted)

    @contextmanager
    def acquire(self, shard: dict):
        """Context-managed pinned attach: ``(index, built)``, auto-released."""
        result = self.attach(shard, pin=True)
        try:
            yield result
        finally:
            self.release(shard)

    def _evict_locked(self) -> list[object]:
        """Evict LRU non-pinned entries until both caps hold (lock held)."""
        evicted: list[object] = []
        while self._over_capacity_locked():
            victim = next(
                (k for k in self._indexes if k not in self._in_use), None
            )
            if victim is None:
                break  # everything resident is pinned: transient overshoot
            index = self._indexes.pop(victim)
            self._cached_bytes -= _index_nbytes(index)
            self.n_evictions += 1
            evicted.append(index)
        return evicted

    def _over_capacity_locked(self) -> bool:
        if (
            self.max_cached_shards is not None
            and len(self._indexes) > self.max_cached_shards
        ):
            return True
        return (
            self.max_cached_bytes is not None
            and self._cached_bytes > self.max_cached_bytes
        )

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "inner_builds": self.n_builds,
                "datasets": len(self._datasets),
                "indexes": len(self._indexes),
                "evictions": self.n_evictions,
                "cached_bytes": self._cached_bytes,
            }


def _handle_request(holder: ShardHolder, header: dict, arrays: dict):
    """One request → ``(reply_header, reply_arrays, keep_serving)``."""
    op = header.get("op")
    if op == "ping":
        return {"ok": True, "pid": os.getpid()}, {}, True
    if op == "ensure_dataset":
        return {"have": holder.has_dataset(str(header["fingerprint"]))}, {}, True
    if op == "put_dataset":
        X = np.asarray(arrays["X"], dtype=np.float64)
        holder.put_dataset(str(header["fingerprint"]), X)
        return {"ok": True}, {}, True
    if op == "attach":
        _, built = holder.attach(header["shard"])
        return {"built": built}, {}, True
    if op == "query":
        qop = str(header["qop"])
        fn = _sharded._SHARD_OPS.get(qop)
        if fn is None:
            raise RemoteProtocolError(f"unknown shard query op {qop!r}")
        Q = np.asarray(arrays["Q"], dtype=np.float64)
        arg = header["arg"]
        # Pinned attach: an LRU-bounded holder must not evict the index
        # out from under the query another connection is running.
        with holder.acquire(header["shard"]) as (index, built):
            result = fn(index, Q, int(arg) if qop == "knn" else float(arg))
        if qop == "count":
            out = {"counts": result}
        elif qop == "range":
            out = {"indptr": result[0], "flat": result[1]}
        else:
            out = {"indptr": result[0], "flat_idx": result[1], "flat_dist": result[2]}
        return {"built": built}, out, True
    if op == "stats":
        return holder.stats(), {}, True
    if op == "shutdown":
        return {"ok": True}, {}, False
    raise RemoteProtocolError(f"unknown pool request op {op!r}")


def _serve_connection(conn: socket.socket, holder: ShardHolder, stop) -> None:
    try:
        while True:
            msg = recv_msg(conn)
            if msg is None:
                return  # client hung up cleanly
            header, arrays = msg
            try:
                reply, out, keep = _handle_request(holder, header, arrays)
            except ReproError as exc:
                reply, out, keep = (
                    {"error": {"type": type(exc).__name__, "message": str(exc)}},
                    {},
                    True,
                )
            send_msg(conn, reply, out)
            if not keep:
                stop.set()
                return
    except ReproError:
        # Client died mid-frame or spoke garbage: drop the connection,
        # keep the worker (and its warm shards) alive for the next one.
        return
    except OSError:
        return
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _pin_blas() -> None:
    # One BLAS thread per worker: the pool's parallelism budget is spent
    # on workers; missing threadpoolctl degrades gracefully (and loudly).
    _sharded._pin_blas_single_thread()


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    on_bound=None,
    holder: ShardHolder | None = None,
) -> None:
    """Run one worker: bind, announce, serve until told to shut down.

    ``port=0`` binds an ephemeral port; ``on_bound(host, port)`` is
    called once listening (the CLI prints it, spawn helpers report it to
    the parent). Blocks until a ``shutdown`` request arrives.
    """
    _pin_blas()
    holder = holder or ShardHolder()
    stop = threading.Event()
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as server:
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((host, port))
        server.listen()
        # Wake the accept loop periodically to notice the stop flag.
        server.settimeout(0.2)
        bound_host, bound_port = server.getsockname()[:2]
        if on_bound is not None:
            on_bound(bound_host, bound_port)
        while not stop.is_set():
            try:
                conn, _ = server.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            conn.settimeout(None)
            threading.Thread(
                target=_serve_connection,
                args=(conn, holder, stop),
                daemon=True,
            ).start()


def worker_main(argv=None) -> int:
    """CLI entry point: ``python -m repro.remote.worker --port N``."""
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description=(
            "Serve one repro pool worker: holds its pinned shard "
            "indexes warm across fits for remote sharded clustering."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--max-cached-shards",
        type=int,
        default=None,
        help="LRU bound on warm shard indexes (default: unbounded)",
    )
    parser.add_argument(
        "--max-cached-bytes",
        type=int,
        default=None,
        help="LRU bytes cap on warm shard indexes (default: unbounded)",
    )
    args = parser.parse_args(argv)

    def announce(host, port):
        print(f"repro pool worker listening on {host}:{port}", flush=True)

    holder = ShardHolder(
        max_cached_shards=args.max_cached_shards,
        max_cached_bytes=args.max_cached_bytes,
    )
    serve(args.host, args.port, on_bound=announce, holder=holder)
    return 0


if __name__ == "__main__":
    raise SystemExit(worker_main())
