"""Length-prefixed socket wire protocol of the remote worker pool.

One message is one frame::

    MAGIC (4 bytes) | header length (uint32 BE) | header JSON | payloads

The header is a small JSON object carrying the operation and its scalar
arguments plus an ``arrays`` manifest — ``[{name, dtype, shape}, ...]``
describing the binary ndarray payloads concatenated after it, in order.
Query matrices travel to workers and CSR result triples travel back as
raw C-contiguous buffers: no pickling, nothing version-fragile on the
wire, and a reader can size every read exactly before issuing it.

Failure mapping: a peer that closes the connection *between* frames is
reported as ``None`` from :func:`recv_msg` (a clean goodbye); one that
dies *mid-frame* raises :class:`~repro.exceptions.WorkerUnavailableError`
(retryable — the peer is gone, not malformed); bad magic, oversized or
malformed headers raise :class:`~repro.exceptions.RemoteProtocolError`
(not retryable — the endpoint is not speaking this protocol).
"""

from __future__ import annotations

import json
import socket
import struct

import numpy as np

from repro.exceptions import RemoteProtocolError, WorkerUnavailableError

__all__ = ["MAGIC", "recv_msg", "send_msg"]

#: Frame magic: "repro pool, format 1". Bump on incompatible changes so
#: version skew fails as a protocol error, not silent corruption.
MAGIC = b"RPP1"

#: Sanity cap on the JSON header (the bulk data travels as payloads).
_MAX_HEADER = 1 << 20

_LEN = struct.Struct(">I")


def send_msg(sock: socket.socket, header: dict, arrays: dict | None = None) -> None:
    """Send one frame: ``header`` plus the ``arrays`` payloads."""
    arrays = arrays or {}
    manifest = []
    payloads = []
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        manifest.append(
            {"name": name, "dtype": array.dtype.str, "shape": list(array.shape)}
        )
        payloads.append(array)
    header = dict(header)
    header["arrays"] = manifest
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(header_bytes) > _MAX_HEADER:
        raise RemoteProtocolError(
            f"message header of {len(header_bytes)} bytes exceeds the "
            f"{_MAX_HEADER}-byte cap; move bulk data into array payloads"
        )
    try:
        sock.sendall(MAGIC + _LEN.pack(len(header_bytes)) + header_bytes)
        for array in payloads:
            sock.sendall(array)
    except (BrokenPipeError, ConnectionError) as exc:
        raise WorkerUnavailableError(
            f"peer went away while sending a frame: {exc}"
        ) from exc


def _recv_exact(sock: socket.socket, n: int, *, at_boundary: bool) -> bytes | None:
    """Read exactly ``n`` bytes, or None on a clean EOF at a frame boundary."""
    chunks = []
    received = 0
    while received < n:
        try:
            chunk = sock.recv(min(n - received, 1 << 20))
        except ConnectionError as exc:
            raise WorkerUnavailableError(
                f"peer reset the connection mid-frame: {exc}"
            ) from exc
        if not chunk:
            if at_boundary and received == 0:
                return None
            raise WorkerUnavailableError(
                f"peer closed the connection mid-frame "
                f"({received} of {n} bytes received)"
            )
        chunks.append(chunk)
        received += len(chunk)
        at_boundary = False
    return b"".join(chunks)


def recv_msg(sock: socket.socket) -> tuple[dict, dict] | None:
    """Receive one frame as ``(header, arrays)``; None on clean EOF."""
    magic = _recv_exact(sock, len(MAGIC) + _LEN.size, at_boundary=True)
    if magic is None:
        return None
    if magic[: len(MAGIC)] != MAGIC:
        raise RemoteProtocolError(
            f"bad frame magic {magic[: len(MAGIC)]!r}: the peer is not a "
            "repro pool endpoint (or speaks an incompatible version)"
        )
    (header_len,) = _LEN.unpack(magic[len(MAGIC) :])
    if header_len > _MAX_HEADER:
        raise RemoteProtocolError(
            f"frame announces a {header_len}-byte header "
            f"(cap {_MAX_HEADER}): refusing"
        )
    header_bytes = _recv_exact(sock, header_len, at_boundary=False)
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RemoteProtocolError(f"malformed frame header: {exc}") from exc
    if not isinstance(header, dict) or not isinstance(header.get("arrays"), list):
        raise RemoteProtocolError("frame header must be an object with 'arrays'")
    arrays: dict[str, np.ndarray] = {}
    for entry in header.pop("arrays"):
        try:
            name = entry["name"]
            dtype = np.dtype(entry["dtype"])
            shape = tuple(int(s) for s in entry["shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise RemoteProtocolError(f"malformed array manifest entry: {exc}") from exc
        nbytes = int(dtype.itemsize * int(np.prod(shape, dtype=np.int64)))
        if nbytes < 0:
            raise RemoteProtocolError(f"negative payload size for array {name!r}")
        payload = _recv_exact(sock, nbytes, at_boundary=False) if nbytes else b""
        arrays[name] = np.frombuffer(payload, dtype=dtype).reshape(shape)
    return header, arrays
