"""Remote worker pool: sharded clustering across machines.

The distributed half of the sharded execution backend
(:mod:`repro.index.sharded`). A fleet of worker processes — started
with ``repro-cli pool serve``, ``python -m repro.remote.worker``, or
in-process via :meth:`WorkerPool.spawn_local` — listens on TCP sockets
speaking the length-prefixed protocol of :mod:`repro.remote.protocol`.
Each worker holds the shard indexes pinned to it *warm across fits*:
the first fit pays one inner build per live shard, every later fit (or
eps value, for eps-independent inner backends) attaches to the cached
indexes and pays zero.

:class:`~repro.remote.pool.RemoteExecutor` is the client side, plugged
in behind the shard-executor seam as the registered ``remote``
:class:`~repro.index.sharded.ExecutorSpec` — query blocks fan out with
the stable ``shard → worker`` affinity of the process executor, results
come back as compact CSR arrays feeding the existing merge kernels
unchanged, and dead workers trigger the same round-robin rebalance
(plus per-call timeouts and bounded retry, which a single box never
needed).
"""

from repro.remote.pool import RemoteExecutor, WorkerPool
from repro.remote.worker import serve, worker_main

__all__ = [
    "RemoteExecutor",
    "WorkerPool",
    "serve",
    "worker_main",
]
