"""Client side of the remote worker pool.

:class:`RemoteExecutor` implements the shard-executor contract
(``run(op, calls)`` / ``close()`` / ``collect_stats()``) over a fleet
of :mod:`repro.remote.worker` processes. It is what the registered
``remote`` :class:`~repro.index.sharded.ExecutorSpec` constructs behind
:class:`~repro.index.sharded.ShardedIndex` — the sharded index itself
is unchanged: query blocks fan out with the stable ``shard → worker``
affinity, per-shard CSR arrays come back and feed the existing merge
kernels.

Robustness contract:

* every call runs under a per-call socket timeout; a timed-out call is
  retried (fresh connection, bounded by the ``retries`` option) and
  then raises :class:`~repro.exceptions.RetryExhaustedError` — the
  *fit* fails typed, the pool and its warm shards stay usable;
* a worker that cannot be reached at all is declared dead: its shards
  are rebalanced round-robin across the surviving workers (who attach
  them on first use, exactly like the single-box process executor) and
  the failed calls are retried — ``n_rebalances`` counts these events
  into ``ShardedIndex.stats()``;
* when every worker is gone, :class:`~repro.exceptions.WorkerUnavailableError`.

Warm-reuse accounting: every worker reply says whether it had to build
the shard index (``built``); the executor sums the builds *it*
triggered, so a second fit on a warm pool reports
``shard_inner_builds == 0`` in ``ClusteringResult.stats`` — the
counter-proof the acceptance criteria ask for.

:class:`WorkerPool` is the lifecycle helper: spawn a local fleet
(tests, benchmarks, ``repro-cli pool serve``), mint the matching
executor spec, shut the fleet down.
"""

from __future__ import annotations

import multiprocessing
import socket
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.exceptions import (
    InvalidParameterError,
    RemoteExecutorError,
    RemoteProtocolError,
    RemoteTimeoutError,
    RetryExhaustedError,
    WorkerUnavailableError,
)
from repro.remote.protocol import recv_msg, send_msg

__all__ = ["RemoteExecutor", "WorkerPool", "DEFAULT_TIMEOUT_S", "DEFAULT_RETRIES"]

#: Per-call socket timeout (seconds) unless the spec says otherwise.
DEFAULT_TIMEOUT_S = 120.0

#: Connection-establishment timeout — kept short so a dead worker is
#: detected (and rebalanced around) quickly instead of after a full
#: call timeout.
DEFAULT_CONNECT_TIMEOUT_S = 5.0

#: Retries per call after a timeout, unless the spec says otherwise.
DEFAULT_RETRIES = 2


def _parse_address(address: str) -> tuple[str, int]:
    host, _, port = str(address).rpartition(":")
    return host, int(port)


class _WorkerClient:
    """One worker endpoint: lazy connection, serialized request/reply."""

    def __init__(self, address: str, timeout_s: float, connect_timeout_s: float):
        self.address = address
        self._timeout_s = timeout_s
        self._connect_timeout_s = connect_timeout_s
        self._sock: socket.socket | None = None
        self._lock = threading.Lock()

    def _connect(self) -> socket.socket:
        host, port = _parse_address(self.address)
        try:
            sock = socket.create_connection(
                (host, port), timeout=self._connect_timeout_s
            )
        except OSError as exc:
            raise WorkerUnavailableError(
                f"cannot reach pool worker at {self.address}: {exc}"
            ) from exc
        sock.settimeout(self._timeout_s)
        return sock

    def call(self, header: dict, arrays: dict | None = None) -> tuple[dict, dict]:
        """One request/reply round-trip; failures mapped to typed errors."""
        with self._lock:
            try:
                if self._sock is None:
                    self._sock = self._connect()
                send_msg(self._sock, header, arrays)
                reply = recv_msg(self._sock)
            except TimeoutError as exc:
                # The worker may still be computing — drop only the
                # connection so a retry (or the next fit) starts clean.
                self._drop()
                raise RemoteTimeoutError(
                    f"pool worker at {self.address} did not answer a "
                    f"{header.get('op')!r} call within {self._timeout_s}s"
                ) from exc
            except (WorkerUnavailableError, OSError) as exc:
                self._drop()
                if isinstance(exc, WorkerUnavailableError):
                    raise
                raise WorkerUnavailableError(
                    f"pool worker at {self.address} failed mid-call: {exc}"
                ) from exc
            except RemoteProtocolError:
                self._drop()
                raise
            if reply is None:
                self._drop()
                raise WorkerUnavailableError(
                    f"pool worker at {self.address} closed the connection"
                )
        header_out, arrays_out = reply
        error = header_out.get("error")
        if error:
            # A worker-side application error (bad parameter, missing
            # artifact, ...) is deterministic: retrying or rebalancing
            # would just repeat it, so it surfaces immediately.
            raise RemoteExecutorError(
                f"pool worker at {self.address} reported "
                f"{error.get('type')}: {error.get('message')}"
            )
        return header_out, arrays_out

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        with self._lock:
            self._drop()


class RemoteExecutor:
    """Affinity-routed shard execution over a worker fleet.

    Implements the same contract as the in-process executors in
    :mod:`repro.index.sharded` (``run`` / ``close`` / ``collect_stats``)
    so :class:`~repro.index.sharded.ShardedIndex` cannot tell the
    difference. ``shards`` maps shard id → ``(lo, hi)`` global rows;
    shard data reaches a worker either as the content-addressed dataset
    (pushed once per worker, sliced and built lazily there) or as an
    ``artifact_path`` into a persisted sharded artifact on a shared
    filesystem (:func:`repro.persistence.load_shard_index` — the warm
    reattach of PR 6 artifacts).
    """

    def __init__(
        self,
        X: np.ndarray,
        shards: dict[int, tuple[int, int]],
        inner_name: str,
        inner_kwargs: dict,
        options: dict,
        artifact_path: str | None = None,
    ) -> None:
        if not isinstance(inner_name, str):
            raise InvalidParameterError(
                "the remote executor rebuilds inner indexes in its "
                "workers and needs a registered backend name"
            )
        addresses = tuple(options.get("addresses") or ())
        if not addresses:
            raise InvalidParameterError(
                "the 'remote' executor needs at least one worker address"
            )
        self._timeout_s = float(options.get("timeout_s", DEFAULT_TIMEOUT_S))
        self._connect_timeout_s = float(
            options.get("connect_timeout_s", DEFAULT_CONNECT_TIMEOUT_S)
        )
        self._retries = int(options.get("retries", DEFAULT_RETRIES))
        self._clients: list[_WorkerClient | None] = [
            _WorkerClient(a, self._timeout_s, self._connect_timeout_s)
            for a in addresses
        ]
        self._X = np.ascontiguousarray(np.asarray(X, dtype=np.float64))
        self._shards = {int(s): (int(lo), int(hi)) for s, (lo, hi) in shards.items()}
        self._inner_name = inner_name
        self._inner_kwargs = dict(inner_kwargs or {})
        self._artifact_path = artifact_path
        self._fingerprint: str | None = None
        # Stable shard→worker affinity, same scheme as the process
        # executor: position in the sorted shard list, modulo the fleet.
        n_slots = len(self._clients)
        self._assignment = {
            s: pos % n_slots for pos, s in enumerate(sorted(self._shards))
        }
        self._dataset_on: set[int] = set()
        self._lock = threading.Lock()
        self._inner_builds = 0
        self.n_rebalances = 0
        self._fanout = ThreadPoolExecutor(
            max_workers=max(1, n_slots), thread_name_prefix="repro-pool"
        )

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------

    def _shard_payload(self, shard_id: int) -> dict:
        lo, hi = self._shards[shard_id]
        payload = {
            "shard_id": shard_id,
            "lo": lo,
            "hi": hi,
            "inner": self._inner_name,
            "inner_kwargs": self._inner_kwargs,
        }
        if self._artifact_path is not None:
            payload["artifact"] = self._artifact_path
        else:
            payload["dataset"] = self._dataset_fingerprint()
        return payload

    def _dataset_fingerprint(self) -> str:
        if self._fingerprint is None:
            from repro.remote.worker import dataset_fingerprint

            self._fingerprint = dataset_fingerprint(self._X)
        return self._fingerprint

    def _ensure_dataset(self, slot_id: int, client: _WorkerClient) -> None:
        """Push the dataset to a worker once (content-addressed skip)."""
        if self._artifact_path is not None or slot_id in self._dataset_on:
            return
        fingerprint = self._dataset_fingerprint()
        have, _ = client.call({"op": "ensure_dataset", "fingerprint": fingerprint})
        if not have.get("have"):
            client.call(
                {"op": "put_dataset", "fingerprint": fingerprint}, {"X": self._X}
            )
        with self._lock:
            self._dataset_on.add(slot_id)

    def _call_shard(self, slot_id: int, op: str, shard_id: int, args: tuple):
        """One shard call with per-timeout retry on a fresh connection."""
        client = self._clients[slot_id]
        if client is None:
            raise WorkerUnavailableError(
                f"slot {slot_id} is already retired"
            )
        Q, arg = args
        header = {
            "op": "query",
            "qop": op,
            "arg": arg,
            "shard": self._shard_payload(shard_id),
        }
        last: RemoteTimeoutError | None = None
        for _ in range(self._retries + 1):
            try:
                self._ensure_dataset(slot_id, client)
                reply, arrays = client.call(header, {"Q": Q})
                break
            except RemoteTimeoutError as exc:
                last = exc
        else:
            raise RetryExhaustedError(
                f"shard {shard_id} {op!r} call to {client.address} timed "
                f"out {self._retries + 1} times ({self._timeout_s}s each); "
                "giving up — the pool itself stays usable"
            ) from last
        if reply.get("built"):
            with self._lock:
                self._inner_builds += 1
        if op == "range":
            return arrays["indptr"], arrays["flat"]
        if op == "count":
            return arrays["counts"]
        return arrays["indptr"], arrays["flat_idx"], arrays["flat_dist"]

    # ------------------------------------------------------------------
    # Executor contract
    # ------------------------------------------------------------------

    def _live_slot_ids(self) -> list[int]:
        return [i for i, c in enumerate(self._clients) if c is not None]

    def _rebalance(self, dead_slot_ids: set[int]) -> None:
        """Retire dead workers, move their shards to the survivors."""
        for slot_id in dead_slot_ids:
            client = self._clients[slot_id]
            if client is not None:
                client.close()
                self._clients[slot_id] = None
            self._dataset_on.discard(slot_id)
        survivors = self._live_slot_ids()
        if not survivors:
            raise WorkerUnavailableError(
                "every pool worker is unreachable; cannot rebalance "
                f"(after {self.n_rebalances} earlier rebalances)"
            )
        orphaned = sorted(
            shard_id
            for shard_id, slot_id in self._assignment.items()
            if slot_id not in survivors
        )
        for rank, shard_id in enumerate(orphaned):
            self._assignment[shard_id] = survivors[rank % len(survivors)]
        self.n_rebalances += 1

    def run(self, op: str, calls: list[tuple[int, tuple]]) -> list:
        results: list = [None] * len(calls)
        pending = list(enumerate(calls))
        # Each retry round retires at least one worker; beyond that the
        # fleet is actively dying under us and retrying would loop.
        for _ in range(len(self._clients) + 1):
            by_slot: dict[int, list[tuple[int, int, tuple]]] = {}
            for pos, (shard_id, args) in pending:
                by_slot.setdefault(self._assignment[shard_id], []).append(
                    (pos, shard_id, args)
                )

            def run_slot(slot_id, batch):
                # One worker's calls run in order on its one connection;
                # different workers run concurrently.
                out = []
                for pos, shard_id, args in batch:
                    out.append((pos, self._call_shard(slot_id, op, shard_id, args)))
                return out

            broken: set[int] = set()
            failed: list[int] = []
            futures = {
                slot_id: self._fanout.submit(run_slot, slot_id, batch)
                for slot_id, batch in by_slot.items()
            }
            for slot_id, future in futures.items():
                try:
                    for pos, result in future.result():
                        results[pos] = result
                except WorkerUnavailableError:
                    broken.add(slot_id)
                    failed.extend(pos for pos, _, _ in by_slot[slot_id])
            if not broken:
                return results
            self._rebalance(broken)
            pending = [(pos, calls[pos]) for pos in sorted(failed)]
        raise RetryExhaustedError(
            f"pool workers keep dying; gave up after {self.n_rebalances} "
            f"rebalances with {len(pending)} calls outstanding"
        )

    def collect_stats(self) -> dict[str, int]:
        """Builds *this executor* triggered, plus rebalance events.

        Purely local accounting — no network round-trip, so stats stay
        answerable while workers are wedged, and a second fit on a warm
        pool genuinely reports zero builds (the workers' cache hits are
        its builds-not-paid).
        """
        with self._lock:
            return {
                "inner_builds": self._inner_builds,
                "n_rebalances": self.n_rebalances,
            }

    def close(self) -> None:
        """Drop the connections; the workers (and their shards) stay warm."""
        self._fanout.shutdown(wait=True)
        for client in self._clients:
            if client is not None:
                client.close()


class WorkerPool:
    """Lifecycle of a worker fleet: spawn, address, spec, shut down.

    Construct with known ``addresses`` to manage an existing fleet, or
    :meth:`spawn_local` to fork one on this machine (tests, benchmarks,
    ``repro-cli pool serve``). The pool object is deliberately separate
    from :class:`RemoteExecutor`: many fits (many executors) come and
    go against one long-lived pool — that is the warm-reuse point.
    """

    def __init__(self, addresses, processes=None) -> None:
        self.addresses = tuple(str(a) for a in addresses)
        if not self.addresses:
            raise InvalidParameterError("WorkerPool needs at least one address")
        self._processes = list(processes or [])

    @classmethod
    def spawn_local(
        cls,
        n_workers: int,
        host: str = "127.0.0.1",
        start_timeout_s: float = 30.0,
        *,
        max_cached_shards: int | None = None,
        max_cached_bytes: int | None = None,
    ) -> "WorkerPool":
        """Fork ``n_workers`` local workers on ephemeral ports.

        ``max_cached_shards`` / ``max_cached_bytes`` bound each worker's
        warm shard-index cache (LRU eviction; see
        :class:`~repro.remote.worker.ShardHolder`).
        """
        if n_workers < 1:
            raise InvalidParameterError(f"n_workers must be >= 1; got {n_workers}")
        from repro.index.sharded import _start_method

        ctx = multiprocessing.get_context(_start_method())
        queue = ctx.Queue()
        processes = []
        for _ in range(n_workers):
            proc = ctx.Process(
                target=_serve_reporting,
                args=(host, queue, max_cached_shards, max_cached_bytes),
            )
            proc.daemon = True
            proc.start()
            processes.append(proc)
        addresses = []
        try:
            for _ in range(n_workers):
                bound_host, bound_port = queue.get(timeout=start_timeout_s)
                addresses.append(f"{bound_host}:{bound_port}")
        except Exception as exc:
            for proc in processes:
                proc.terminate()
            raise WorkerUnavailableError(
                f"local pool workers failed to start within "
                f"{start_timeout_s}s: {exc}"
            ) from exc
        return cls(addresses, processes)

    def executor_spec(self, **options):
        """The ``remote`` :class:`~repro.index.sharded.ExecutorSpec` for
        this pool (extra options — ``timeout_s``, ``retries`` — pass
        through)."""
        from repro.index.sharded import ExecutorSpec

        return ExecutorSpec("remote", {"addresses": self.addresses, **options})

    def ping(self, timeout_s: float = 10.0) -> list[int]:
        """Worker pids, in address order; proves the fleet is listening."""
        pids = []
        for address in self.addresses:
            client = _WorkerClient(address, timeout_s, timeout_s)
            try:
                reply, _ = client.call({"op": "ping"})
                pids.append(int(reply["pid"]))
            finally:
                client.close()
        return pids

    @property
    def worker_pids(self) -> list[int]:
        """Pids of locally spawned workers (empty for an external fleet)."""
        return [proc.pid for proc in self._processes]

    def shutdown(self, join_timeout_s: float = 10.0) -> None:
        """Ask every worker to exit, then reap local processes."""
        for address in self.addresses:
            client = _WorkerClient(address, join_timeout_s, 2.0)
            try:
                client.call({"op": "shutdown"})
            except RemoteExecutorError:
                pass  # already dead is shut down enough
            finally:
                client.close()
        for proc in self._processes:
            proc.join(timeout=join_timeout_s)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=join_timeout_s)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def _serve_reporting(
    host: str,
    queue,
    max_cached_shards: int | None = None,
    max_cached_bytes: int | None = None,
) -> None:
    """Worker-process entry: serve on an ephemeral port, report it back."""
    from repro.remote.worker import ShardHolder, serve

    holder = ShardHolder(
        max_cached_shards=max_cached_shards,
        max_cached_bytes=max_cached_bytes,
    )
    serve(host, 0, on_bound=lambda h, p: queue.put((h, p)), holder=holder)
