"""Seeded random-number helpers.

All stochastic components in this library (samplers, estimator training,
sampling-based clusterers, LAF post-processing) accept a ``seed`` argument
and route it through :func:`ensure_rng`, which gives three call styles:

* ``ensure_rng(None)`` — a fresh, OS-seeded generator;
* ``ensure_rng(42)`` — a deterministic generator;
* ``ensure_rng(existing_generator)`` — passed through unchanged, so a
  caller can thread one generator through a whole pipeline.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rng"]


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    seed:
        ``None`` for nondeterministic, an ``int`` for a deterministic
        stream, or an existing ``Generator`` to pass through.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    Children are derived with :meth:`numpy.random.Generator.spawn`, so the
    parent stream stays reproducible regardless of how many children are
    requested.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    return list(rng.spawn(n))
